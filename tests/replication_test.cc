// Label-preserving WAL replication (src/replication): wire format, hub ↔
// replica cursor protocol (duplicates, gaps, snapshot catch-up, multi-
// follower fan-out through the shared frame cache), lease/heartbeat
// automatic failover, and the full K-machine path over simnet/netd —
// primary kill, lease-driven promotion of exactly one successor, and
// bit-identical record/label/handle state versus single-node crash
// recovery.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/fs/file_server.h"
#include "src/net/client.h"
#include "src/okws/idd.h"
#include "src/obs/metrics.h"
#include "src/obs/provenance.h"
#include "src/okws/okws_world.h"
#include "src/okws/services.h"
#include "src/replication/follower.h"
#include "src/replication/link.h"
#include "src/replication/read_gate.h"
#include "src/replication/replica.h"
#include "src/replication/source.h"
#include "src/replication/wire.h"
#include "src/sim/cycles.h"
#include "src/store/store.h"
#include "tests/test_util.h"

namespace asbestos {
namespace {

using testing::RecorderProcess;
using testing::TempDir;

Handle H(uint64_t v) { return Handle::FromValue(v); }

// --- Wire format -------------------------------------------------------------

TEST(ReplWireTest, FrameRoundTrip) {
  replwire::WireMessage batch;
  batch.type = replwire::kBatch;
  batch.shard = 3;
  batch.generation = 7;
  batch.offset = 4096;
  batch.lease_until = 123456;
  batch.successor_id = 9;
  batch.payload = std::string("framed wal bytes\x00\x01", 18);

  std::string stream;
  replwire::AppendFrame(batch, &stream);
  replwire::WireMessage ack;
  ack.type = replwire::kAck;
  ack.shard = 3;
  ack.source_id = 0xABCDEF;
  ack.generation = 7;
  ack.offset = 8192;
  ack.follower_id = 42;
  replwire::AppendFrame(ack, &stream);
  replwire::WireMessage hb;
  hb.type = replwire::kHeartbeat;
  hb.lease_until = 999;
  hb.successor_id = 42;
  replwire::AppendFrame(hb, &stream);
  replwire::WireMessage busy;
  busy.type = replwire::kBusy;
  busy.retry_after = 777;
  replwire::AppendFrame(busy, &stream);

  replwire::WireMessage out;
  ASSERT_EQ(replwire::ConsumeFrame(&stream, &out), replwire::FrameParse::kFrame);
  EXPECT_EQ(out.type, replwire::kBatch);
  EXPECT_EQ(out.shard, 3u);
  EXPECT_EQ(out.generation, 7u);
  EXPECT_EQ(out.offset, 4096u);
  EXPECT_EQ(out.lease_until, 123456u);
  EXPECT_EQ(out.successor_id, 9u);
  EXPECT_EQ(out.payload, batch.payload);
  ASSERT_EQ(replwire::ConsumeFrame(&stream, &out), replwire::FrameParse::kFrame);
  EXPECT_EQ(out.type, replwire::kAck);
  EXPECT_EQ(out.source_id, 0xABCDEFu);
  EXPECT_EQ(out.offset, 8192u);
  EXPECT_EQ(out.follower_id, 42u);
  ASSERT_EQ(replwire::ConsumeFrame(&stream, &out), replwire::FrameParse::kFrame);
  EXPECT_EQ(out.type, replwire::kHeartbeat);
  EXPECT_EQ(out.lease_until, 999u);
  EXPECT_EQ(out.successor_id, 42u);
  ASSERT_EQ(replwire::ConsumeFrame(&stream, &out), replwire::FrameParse::kFrame);
  EXPECT_EQ(out.type, replwire::kBusy);
  EXPECT_EQ(out.retry_after, 777u);
  EXPECT_TRUE(stream.empty());
}

TEST(ReplWireTest, TornFrameWaitsForMoreBytes) {
  replwire::WireMessage hello;
  hello.type = replwire::kHello;
  hello.source_id = 42;
  hello.shard_count = 4;
  std::string whole;
  replwire::AppendFrame(hello, &whole);

  replwire::WireMessage out;
  // Deliver the frame one byte at a time: every prefix parses as kNeedMore.
  std::string buffer;
  for (size_t i = 0; i + 1 < whole.size(); ++i) {
    buffer.push_back(whole[i]);
    ASSERT_EQ(replwire::ConsumeFrame(&buffer, &out), replwire::FrameParse::kNeedMore);
  }
  buffer.push_back(whole.back());
  ASSERT_EQ(replwire::ConsumeFrame(&buffer, &out), replwire::FrameParse::kFrame);
  EXPECT_EQ(out.source_id, 42u);
  EXPECT_EQ(out.shard_count, 4u);
}

TEST(ReplWireTest, CorruptFramePoisons) {
  replwire::WireMessage hello;
  hello.type = replwire::kHello;
  hello.source_id = 42;
  hello.shard_count = 4;
  std::string stream;
  replwire::AppendFrame(hello, &stream);
  stream[stream.size() - 1] ^= 0x55;  // flip payload bits: CRC must catch it
  replwire::WireMessage out;
  EXPECT_EQ(replwire::ConsumeFrame(&stream, &out), replwire::FrameParse::kCorrupt);
}

// --- Hub ↔ replica protocol (no transport) -----------------------------------

class ReplProtocolTest : public ::testing::Test {
 protected:
  void OpenPrimary(uint32_t shards, uint64_t compact_min = 1024,
                   uint64_t retain_tail_bytes = 0) {
    StoreOptions opts;
    opts.dir = dir_.path() + "/primary";
    opts.shards = shards;
    opts.compact_min_log_records = compact_min;
    opts.retain_wal_tail_bytes = retain_tail_bytes;
    auto store = DurableStore::Open(opts);
    ASSERT_TRUE(store.ok());
    primary_ = store.take();
    hub_ = std::make_unique<ReplicationHub>(primary_.get(), /*source_id=*/0x5EED);
    session_ = hub_->OpenSession();
  }

  void OpenReplica(uint32_t shards, uint64_t follower_id = 0) {
    StoreOptions opts;
    opts.dir = dir_.path() + "/replica";
    opts.shards = shards;
    ReplicaOptions ropts;
    ropts.follower_id = follower_id;
    auto replica = ReplicaStore::Open(opts, ropts);
    ASSERT_TRUE(replica.ok());
    replica_ = replica.take();
  }

  // A replica in its own directory, for multi-follower routing tests.
  std::unique_ptr<ReplicaStore> OpenNamedReplica(const std::string& name, uint32_t shards,
                                                 uint64_t follower_id) {
    StoreOptions opts;
    opts.dir = dir_.path() + "/" + name;
    opts.shards = shards;
    ReplicaOptions ropts;
    ropts.follower_id = follower_id;
    auto replica = ReplicaStore::Open(opts, ropts);
    EXPECT_TRUE(replica.ok());
    return replica.take();
  }

  // Parses a byte stream into individual frames.
  static std::vector<replwire::WireMessage> Parse(std::string stream) {
    std::vector<replwire::WireMessage> out;
    replwire::WireMessage m;
    while (replwire::ConsumeFrame(&stream, &m) == replwire::FrameParse::kFrame) {
      out.push_back(m);
    }
    EXPECT_TRUE(stream.empty());
    return out;
  }

  // One full exchange between a session and a replica: hello/resume
  // handshake, then frames and acks until both sides go quiet.
  static void SyncPair(FollowerSession* session, ReplicaStore* replica) {
    std::string acks;
    for (const replwire::WireMessage& m : Parse(session->SessionHello())) {
      ASSERT_EQ(replica->HandleFrame(m, &acks), Status::kOk);
    }
    for (int round = 0; round < 100; ++round) {
      for (const replwire::WireMessage& a : Parse(std::move(acks))) {
        session->HandleAck(a);
      }
      acks.clear();
      std::string frames;
      if (session->PollFrames(1 << 16, ~0ULL, &frames) == 0) {
        break;
      }
      for (const replwire::WireMessage& m : Parse(std::move(frames))) {
        ASSERT_EQ(replica->HandleFrame(m, &acks), Status::kOk);
      }
    }
    for (const replwire::WireMessage& a : Parse(std::move(acks))) {
      session->HandleAck(a);
    }
  }

  void SyncOnce() { SyncPair(session_, replica_.get()); }

  static void ExpectStoreMatches(const DurableStore* got_store, const DurableStore* want) {
    ASSERT_EQ(got_store->size(), want->size());
    want->ForEach([&](const std::string& key, const StoreRecord& w) {
      const StoreRecord* got = got_store->Get(key);
      ASSERT_NE(got, nullptr) << key;
      EXPECT_EQ(got->value, w.value) << key;
      EXPECT_TRUE(got->secrecy.Equals(w.secrecy)) << key;
      EXPECT_TRUE(got->integrity.Equals(w.integrity)) << key;
    });
  }

  void ExpectReplicaMatchesPrimary() {
    ExpectStoreMatches(replica_->store(), primary_.get());
  }

  TempDir dir_;
  std::unique_ptr<DurableStore> primary_;
  std::unique_ptr<ReplicationHub> hub_;
  FollowerSession* session_ = nullptr;  // owned by hub_
  std::unique_ptr<ReplicaStore> replica_;
};

TEST_F(ReplProtocolTest, StreamsLabeledRecords) {
  OpenPrimary(4);
  OpenReplica(4);
  const Label secrecy({{H(77), Level::kL3}}, Level::kStar);
  const Label integrity({{H(88), Level::kL0}}, Level::kL3);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(primary_->Put("key" + std::to_string(i), "value" + std::to_string(i), secrecy,
                            integrity),
              Status::kOk);
  }
  ASSERT_EQ(primary_->Erase("key50"), Status::kOk);
  SyncOnce();
  EXPECT_TRUE(session_->FullySynced());
  ExpectReplicaMatchesPrimary();
  EXPECT_EQ(replica_->store()->Get("key50"), nullptr);
  // Labels came through the pickled WAL records and the canonical-rep
  // intern table: extensionally equal AND entry-for-entry identical.
  const StoreRecord* got = replica_->store()->Get("key1");
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->secrecy.Entries(), secrecy.Entries());
  EXPECT_EQ(got->integrity.Entries(), integrity.Entries());
}

TEST_F(ReplProtocolTest, ShardCountMismatchPoisonsSession) {
  OpenPrimary(4);
  OpenReplica(2);
  std::string acks;
  const auto frames = Parse(session_->SessionHello());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(replica_->HandleFrame(frames[0], &acks), Status::kInvalidArgs);
}

TEST_F(ReplProtocolTest, DuplicateAndReorderedBatchesApplyIdempotently) {
  OpenPrimary(1);
  OpenReplica(1);
  SyncOnce();  // establish the session at offset 0
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(primary_->Put("k" + std::to_string(i), "v", Label::Bottom(), Label::Top()),
              Status::kOk);
  }
  // Pull the pending span as several small batches without acking.
  std::string stream;
  ASSERT_GT(session_->PollFrames(/*max_batch_bytes=*/32, ~0ULL, &stream), 1u);
  std::vector<replwire::WireMessage> batches = Parse(std::move(stream));

  std::string acks;
  // Reordered: the second batch first — a gap, ignored but re-acked.
  ASSERT_EQ(replica_->HandleFrame(batches[1], &acks), Status::kOk);
  EXPECT_EQ(replica_->stats().gaps_ignored, 1u);
  // In-order apply.
  ASSERT_EQ(replica_->HandleFrame(batches[0], &acks), Status::kOk);
  ASSERT_EQ(replica_->HandleFrame(batches[1], &acks), Status::kOk);
  const uint64_t applied = replica_->stats().batches_applied;
  // Duplicates: both batches again — skipped, state unchanged.
  ASSERT_EQ(replica_->HandleFrame(batches[0], &acks), Status::kOk);
  ASSERT_EQ(replica_->HandleFrame(batches[1], &acks), Status::kOk);
  EXPECT_EQ(replica_->stats().batches_applied, applied);
  EXPECT_EQ(replica_->stats().duplicates_skipped, 2u);
  // Remaining batches in order; every ack (including re-acks) feeds back.
  for (size_t i = 2; i < batches.size(); ++i) {
    ASSERT_EQ(replica_->HandleFrame(batches[i], &acks), Status::kOk);
  }
  for (const replwire::WireMessage& a : Parse(std::move(acks))) {
    session_->HandleAck(a);
  }
  EXPECT_TRUE(session_->FullySynced());
  ExpectReplicaMatchesPrimary();
}

TEST_F(ReplProtocolTest, GapRewindsViaGoBackN) {
  OpenPrimary(1);
  OpenReplica(1);
  SyncOnce();
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(primary_->Put("k" + std::to_string(i), "v", Label::Bottom(), Label::Top()),
              Status::kOk);
  }
  std::string stream;
  ASSERT_GT(session_->PollFrames(32, ~0ULL, &stream), 2u);
  std::vector<replwire::WireMessage> batches = Parse(std::move(stream));
  // Deliver only the LAST batch: the replica ignores the gap and re-acks
  // its true position; the session rewinds and retransmits everything.
  std::string acks;
  ASSERT_EQ(replica_->HandleFrame(batches.back(), &acks), Status::kOk);
  for (const replwire::WireMessage& a : Parse(std::move(acks))) {
    session_->HandleAck(a);
  }
  EXPECT_EQ(session_->stats().rewinds, 1u);
  SyncOnce();
  EXPECT_TRUE(session_->FullySynced());
  ExpectReplicaMatchesPrimary();
}

TEST_F(ReplProtocolTest, CompactionForcesSnapshotCatchUp) {
  OpenPrimary(2);
  OpenReplica(2);
  const Label secrecy({{H(9), Level::kL3}}, Level::kStar);
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(primary_->Put("k" + std::to_string(i), std::string(100, 'x'), secrecy,
                            Label::Top()),
              Status::kOk);
  }
  // The WAL span a fresh follower would need is gone.
  ASSERT_EQ(primary_->Compact(), Status::kOk);
  EXPECT_EQ(primary_->wal_bytes(), 0u);
  SyncOnce();
  EXPECT_TRUE(session_->FullySynced());
  EXPECT_EQ(replica_->stats().snapshots_installed, 2u);
  ExpectReplicaMatchesPrimary();

  // Mid-session compaction: stream some, compact (generation bump), stream
  // more — the session notices the cursor's span vanished and re-images.
  for (int i = 0; i < 16; ++i) {
    ASSERT_EQ(primary_->Put("post" + std::to_string(i), "y", Label::Bottom(), Label::Top()),
              Status::kOk);
  }
  ASSERT_EQ(primary_->Compact(), Status::kOk);
  SyncOnce();
  EXPECT_TRUE(session_->FullySynced());
  ExpectReplicaMatchesPrimary();
  EXPECT_GE(replica_->stats().snapshots_installed, 3u);
}

TEST_F(ReplProtocolTest, PromoteRefusesFurtherFrames) {
  OpenPrimary(1);
  OpenReplica(1);
  SyncOnce();
  ASSERT_EQ(primary_->Put("k", "v", Label::Bottom(), Label::Top()), Status::kOk);
  std::string stream;
  ASSERT_EQ(session_->PollFrames(1 << 16, ~0ULL, &stream), 1u);
  const auto batches = Parse(std::move(stream));
  ASSERT_EQ(replica_->Promote(), Status::kOk);
  std::string acks;
  EXPECT_EQ(replica_->HandleFrame(batches[0], &acks), Status::kBadState);
  EXPECT_EQ(replica_->store()->Get("k"), nullptr);
}

TEST_F(ReplProtocolTest, WarmResumeAfterReplicaReboot) {
  OpenPrimary(2);
  OpenReplica(2);
  for (int i = 0; i < 32; ++i) {
    ASSERT_EQ(primary_->Put("k" + std::to_string(i), "v", Label::Bottom(), Label::Top()),
              Status::kOk);
  }
  SyncOnce();
  ASSERT_TRUE(session_->FullySynced());
  ASSERT_EQ(replica_->Checkpoint(), Status::kOk);
  const uint64_t snapshots_before = session_->stats().snapshots_shipped;

  // Reboot the replica: the checkpointed cursor lets the session resume
  // without re-imaging.
  replica_.reset();
  OpenReplica(2);
  for (int i = 32; i < 48; ++i) {
    ASSERT_EQ(primary_->Put("k" + std::to_string(i), "v", Label::Bottom(), Label::Top()),
              Status::kOk);
  }
  SyncOnce();
  EXPECT_TRUE(session_->FullySynced());
  EXPECT_EQ(session_->stats().snapshots_shipped, snapshots_before);
  ExpectReplicaMatchesPrimary();
}

TEST_F(ReplProtocolTest, PipelinedInOrderAcksNeverRewind) {
  OpenPrimary(1);
  OpenReplica(1);
  SyncOnce();
  for (int i = 0; i < 16; ++i) {
    ASSERT_EQ(primary_->Put("k" + std::to_string(i), "v", Label::Bottom(), Label::Top()),
              Status::kOk);
  }
  // Several small batches in flight at once, acks fed back in order — the
  // normal pipelined shape. None of these acks shows lost progress, so none
  // may trigger a retransmission.
  std::string stream;
  ASSERT_GT(session_->PollFrames(32, ~0ULL, &stream), 2u);
  std::string acks;
  for (const replwire::WireMessage& b : Parse(std::move(stream))) {
    ASSERT_EQ(replica_->HandleFrame(b, &acks), Status::kOk);
  }
  const uint64_t batches_before = session_->stats().batches_shipped;
  for (const replwire::WireMessage& a : Parse(std::move(acks))) {
    session_->HandleAck(a);
  }
  EXPECT_EQ(session_->stats().rewinds, 0u);
  std::string rest;
  EXPECT_EQ(session_->PollFrames(32, ~0ULL, &rest), 0u) << "nothing left to re-ship";
  EXPECT_EQ(session_->stats().batches_shipped, batches_before);
  EXPECT_TRUE(session_->FullySynced());
}

TEST_F(ReplProtocolTest, OversizedRecordShipsAsSingletonBatch) {
  OpenPrimary(1);
  OpenReplica(1);
  SyncOnce();
  // One record far beyond the batch limit, then a small one. The big record
  // must ship as exactly ONE oversized frame — not drag the rest of the log
  // with it past the budget.
  ASSERT_EQ(primary_->Put("big", std::string(8192, 'x'), Label::Bottom(), Label::Top()),
            Status::kOk);
  ASSERT_EQ(primary_->Put("small", "v", Label::Bottom(), Label::Top()), Status::kOk);
  std::string stream;
  ASSERT_EQ(session_->PollFrames(/*max_batch_bytes=*/256, /*max_total_bytes=*/512, &stream),
            1u)
      << "the total budget admits only the oversized singleton this poll";
  auto frames = Parse(std::move(stream));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_GT(frames[0].payload.size(), 8192u);   // the big record, whole
  EXPECT_LT(frames[0].payload.size(), 8192u + 256u)
      << "the small record must NOT have ridden along";
  std::string acks;
  ASSERT_EQ(replica_->HandleFrame(frames[0], &acks), Status::kOk);
  for (const replwire::WireMessage& a : Parse(std::move(acks))) {
    session_->HandleAck(a);
  }
  SyncOnce();
  EXPECT_TRUE(session_->FullySynced());
  ExpectReplicaMatchesPrimary();
}

TEST_F(ReplProtocolTest, CompactionDuringResumeWindowStillSnapshots) {
  OpenPrimary(1);
  OpenReplica(1);
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(primary_->Put("k" + std::to_string(i), "v", Label::Bottom(), Label::Top()),
              Status::kOk);
  }
  // Fresh replica acks an unknown position; BEFORE the session polls, a
  // compaction advances the generation. The session must still image the
  // shard (a generation-arithmetic sentinel would collide with the new
  // generation and stream garbage offsets instead).
  std::string acks;
  for (const replwire::WireMessage& m : Parse(session_->SessionHello())) {
    ASSERT_EQ(replica_->HandleFrame(m, &acks), Status::kOk);
  }
  for (const replwire::WireMessage& a : Parse(std::move(acks))) {
    session_->HandleAck(a);
  }
  ASSERT_EQ(primary_->Compact(), Status::kOk);  // generation 0 → 1
  std::string stream;
  ASSERT_EQ(session_->PollFrames(1 << 16, ~0ULL, &stream), 1u);
  auto frames = Parse(std::move(stream));
  ASSERT_EQ(frames[0].type, replwire::kSnapshot);
  acks.clear();
  ASSERT_EQ(replica_->HandleFrame(frames[0], &acks), Status::kOk);
  for (const replwire::WireMessage& a : Parse(std::move(acks))) {
    session_->HandleAck(a);
  }
  EXPECT_TRUE(session_->FullySynced());
  ExpectReplicaMatchesPrimary();
}

TEST_F(ReplProtocolTest, MismatchedAuthTokenShipsNothing) {
  OpenPrimary(4);
  // The primary requires a token; this replica was configured with another.
  ReplicationHub::Tuning tuning;
  tuning.auth_token = 42;
  hub_ = std::make_unique<ReplicationHub>(primary_.get(), 0x5EED, tuning);
  session_ = hub_->OpenSession();
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(primary_->Put("k" + std::to_string(i), "secret", Label::Bottom(), Label::Top()),
              Status::kOk);
  }
  StoreOptions opts;
  opts.dir = dir_.path() + "/replica";
  opts.shards = 4;
  ReplicaOptions ropts;
  ropts.auth_token = 7;
  auto replica = ReplicaStore::Open(opts, ropts);
  ASSERT_TRUE(replica.ok());
  replica_ = replica.take();
  // The follower refuses the foreign hello outright...
  std::string acks;
  const auto hello = Parse(session_->SessionHello());
  ASSERT_EQ(hello.size(), 1u);
  EXPECT_EQ(replica_->HandleFrame(hello[0], &acks), Status::kAccessDenied);
  EXPECT_TRUE(acks.empty());
  // ...and even a forged ack with the wrong token moves nothing: every
  // shard stays in await-resume and no labeled byte leaves the session.
  replwire::WireMessage forged;
  forged.type = replwire::kAck;
  forged.token = 7;
  forged.shard = 0;
  session_->HandleAck(forged);
  std::string stream;
  EXPECT_EQ(session_->PollFrames(1 << 16, ~0ULL, &stream), 0u);
  EXPECT_TRUE(stream.empty());
  EXPECT_EQ(replica_->store()->size(), 0u);
}

TEST_F(ReplProtocolTest, MatchingAuthTokenSyncs) {
  OpenPrimary(2);
  ReplicationHub::Tuning tuning;
  tuning.auth_token = 99;
  hub_ = std::make_unique<ReplicationHub>(primary_.get(), 0x5EED, tuning);
  session_ = hub_->OpenSession();
  ASSERT_EQ(primary_->Put("k", "v", Label::Bottom(), Label::Top()), Status::kOk);
  StoreOptions opts;
  opts.dir = dir_.path() + "/replica";
  opts.shards = 2;
  ReplicaOptions ropts;
  ropts.auth_token = 99;
  auto replica = ReplicaStore::Open(opts, ropts);
  ASSERT_TRUE(replica.ok());
  replica_ = replica.take();
  SyncOnce();
  EXPECT_TRUE(session_->FullySynced());
  ExpectReplicaMatchesPrimary();
}

// --- Multi-follower fan-out through the hub ----------------------------------

// One replica + its hub session, for fan-out tests.
struct Mirror {
  std::unique_ptr<ReplicaStore> replica;
  FollowerSession* session = nullptr;  // owned by the hub

  static Mirror Open(ReplicationHub* hub, const std::string& dir, uint32_t shards,
                     uint64_t follower_id) {
    Mirror m;
    StoreOptions opts;
    opts.dir = dir;
    opts.shards = shards;
    ReplicaOptions ropts;
    ropts.follower_id = follower_id;
    auto replica = ReplicaStore::Open(opts, ropts);
    EXPECT_TRUE(replica.ok());
    m.replica = replica.take();
    m.session = hub->OpenSession();
    return m;
  }
};

TEST_F(ReplProtocolTest, ThreeFollowersShareOneWalReadThroughTheFrameCache) {
  OpenPrimary(4);
  std::vector<Mirror> mirrors;
  for (uint64_t id = 1; id <= 3; ++id) {
    mirrors.push_back(
        Mirror::Open(hub_.get(), dir_.path() + "/m" + std::to_string(id), 4, id));
  }
  // Establish every session first (fresh replicas are imaged, not
  // streamed); the cache-sharing claim is about steady-state BATCHES.
  for (Mirror& m : mirrors) {
    SyncPair(m.session, m.replica.get());
  }
  const Label secrecy({{H(5), Level::kL3}}, Level::kStar);
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(primary_->Put("key" + std::to_string(i), std::string(64, 'x'), secrecy,
                            Label::Top()),
              Status::kOk);
  }
  const uint64_t wal_reads_before = primary_->wal_read_calls();
  for (Mirror& m : mirrors) {
    SyncPair(m.session, m.replica.get());
  }
  for (Mirror& m : mirrors) {
    EXPECT_TRUE(m.session->FullySynced());
    ExpectStoreMatches(m.replica->store(), primary_.get());
  }
  // The whole point of the hub: three followers at the same offsets were fed
  // from ONE set of WAL reads. The first session misses and populates; the
  // other two hit.
  const FrameCacheStats& cache = hub_->cache_stats();
  EXPECT_GT(cache.hits, 0u);
  EXPECT_GE(cache.hits, cache.misses) << "two of three sessions should be served from cache";
  const uint64_t wal_reads = primary_->wal_read_calls() - wal_reads_before;
  EXPECT_LE(wal_reads, cache.misses + 1) << "only cache misses may touch the log";
}

TEST_F(ReplProtocolTest, StragglerSnapshotsWhileSiblingsStream) {
  OpenPrimary(2);
  std::vector<Mirror> mirrors;
  mirrors.push_back(Mirror::Open(hub_.get(), dir_.path() + "/fast1", 2, 1));
  mirrors.push_back(Mirror::Open(hub_.get(), dir_.path() + "/fast2", 2, 2));
  for (Mirror& m : mirrors) {
    SyncPair(m.session, m.replica.get());
    EXPECT_EQ(m.replica->stats().snapshots_installed, 2u) << "initial images only";
  }
  // The established pair streams a backlog through batches...
  for (int i = 0; i < 32; ++i) {
    ASSERT_EQ(primary_->Put("k" + std::to_string(i), "v", Label::Bottom(), Label::Top()),
              Status::kOk);
  }
  for (Mirror& m : mirrors) {
    SyncPair(m.session, m.replica.get());
  }
  const uint64_t fast_batches_before = mirrors[0].session->stats().batches_shipped;
  ASSERT_GT(fast_batches_before, 0u);
  // ...then a straggler joins at an offset the hub cannot recognize (fresh
  // directory): it is forced through whole-shard snapshot catch-up, while
  // the fast pair keeps streaming the NEW appends as batches, unaffected.
  mirrors.push_back(Mirror::Open(hub_.get(), dir_.path() + "/straggler", 2, 3));
  for (int i = 32; i < 48; ++i) {
    ASSERT_EQ(primary_->Put("k" + std::to_string(i), "v", Label::Bottom(), Label::Top()),
              Status::kOk);
  }
  for (Mirror& m : mirrors) {
    SyncPair(m.session, m.replica.get());
    EXPECT_TRUE(m.session->FullySynced());
    ExpectStoreMatches(m.replica->store(), primary_.get());
  }
  EXPECT_GE(mirrors[2].replica->stats().snapshots_installed, 2u) << "straggler imaged";
  EXPECT_GT(mirrors[0].session->stats().batches_shipped, fast_batches_before)
      << "fast follower streamed batches while the straggler was imaged";
  EXPECT_EQ(mirrors[0].replica->stats().snapshots_installed, 2u)
      << "fast follower was never re-imaged";
  // Snapshot frames are lease-stamped like batches: even a catch-up that
  // never saw a kBatch leaves the straggler holding a live lease.
  EXPECT_GT(mirrors[2].replica->lease_until(), 0u);
}

TEST_F(ReplProtocolTest, SuccessorIsTheLowestCaughtUpFollowerId) {
  OpenPrimary(1);
  std::vector<Mirror> mirrors;
  mirrors.push_back(Mirror::Open(hub_.get(), dir_.path() + "/m7", 1, 7));
  mirrors.push_back(Mirror::Open(hub_.get(), dir_.path() + "/m3", 1, 3));
  mirrors.push_back(Mirror::Open(hub_.get(), dir_.path() + "/m9", 1, 9));
  EXPECT_EQ(hub_->SuccessorId(), 0u) << "nobody resumed yet";
  for (Mirror& m : mirrors) {
    SyncPair(m.session, m.replica.get());
  }
  EXPECT_EQ(hub_->SuccessorId(), 3u) << "lowest caught-up follower id";
  // The designation reached every follower on the shipped batches.
  ASSERT_EQ(primary_->Put("k", "v", Label::Bottom(), Label::Top()), Status::kOk);
  for (Mirror& m : mirrors) {
    SyncPair(m.session, m.replica.get());
    EXPECT_EQ(m.replica->successor_id(), 3u);
    EXPECT_GT(m.replica->lease_until(), 0u) << "lease stamped on batches";
  }
  // Close follower 3's session (its machine died — or just its wire). The
  // designation must NOT move yet: follower 3 may still act on the
  // designation it heard, until the last lease stamped for it runs out.
  // Moving early would let a re-designation race the departed designee's
  // own expiry check into TWO promotes.
  hub_->CloseSession(mirrors[1].session);
  EXPECT_EQ(hub_->SuccessorId(), 3u) << "fenced until the departed lease expires";
  // Once follower 3's lease horizon has provably passed, it can no longer
  // act, and the designation moves to the next-lowest caught-up id.
  GetCycleAccounting().Charge(Component::kOther, 60'000'000);  // > lease interval
  EXPECT_EQ(hub_->SuccessorId(), 7u);
}

TEST_F(ReplProtocolTest, HeartbeatRefreshesLeaseWithoutData) {
  OpenPrimary(1);
  OpenReplica(1, /*follower_id=*/4);
  SyncOnce();
  const uint64_t lease_after_sync = replica_->lease_until();
  // No new appends: polling ships nothing, but an explicit heartbeat renews
  // the lease and carries the successor designation.
  std::string out;
  EXPECT_EQ(session_->PollFrames(1 << 16, ~0ULL, &out), 0u);
  GetCycleAccounting().Charge(Component::kOther, 1000);  // the clock moves on
  session_->AppendHeartbeat(&out);
  std::string acks;
  for (const replwire::WireMessage& m : Parse(std::move(out))) {
    ASSERT_EQ(replica_->HandleFrame(m, &acks), Status::kOk);
  }
  EXPECT_EQ(replica_->stats().heartbeats_seen, 1u);
  EXPECT_GT(replica_->lease_until(), lease_after_sync);
  EXPECT_EQ(replica_->successor_id(), 4u);
  EXPECT_EQ(session_->stats().heartbeats_sent, 1u);
}

// --- Compaction ride-through (retained WAL tail + kGenMark) ------------------

TEST_F(ReplProtocolTest, SyncedFollowerRidesThroughCompactionViaRetainedTail) {
  OpenPrimary(2, /*compact_min=*/1024, /*retain_tail_bytes=*/256 * 1024);
  OpenReplica(2, /*follower_id=*/1);
  const Label secrecy({{H(9), Level::kL3}}, Level::kStar);
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(primary_->Put("k" + std::to_string(i), std::string(100, 'x'), secrecy,
                            Label::Top()),
              Status::kOk);
  }
  SyncOnce();
  ASSERT_TRUE(session_->FullySynced());
  // A fresh follower is imaged once per shard — that is the normal adoption
  // path. Ride-through means the count never grows PAST this baseline.
  const uint64_t initial_images = session_->stats().snapshots_shipped;
  ASSERT_EQ(initial_images, 2u);

  // Compaction with a retained tail: the synced follower rides through on
  // kGenMark hand-offs — the whole point of satellite retention — and the
  // session never re-images a store the follower already has.
  ASSERT_EQ(primary_->Compact(), Status::kOk);
  for (int i = 0; i < 16; ++i) {
    ASSERT_EQ(primary_->Put("post" + std::to_string(i), "y", Label::Bottom(), Label::Top()),
              Status::kOk);
  }
  SyncOnce();
  EXPECT_TRUE(session_->FullySynced());
  EXPECT_EQ(session_->stats().snapshots_shipped, initial_images)
      << "ride-through must not re-image";
  EXPECT_EQ(replica_->stats().snapshots_installed, initial_images);
  EXPECT_EQ(session_->stats().gen_marks_sent, 2u);  // one hand-off per shard
  EXPECT_EQ(replica_->stats().gen_marks_applied, 2u);
  ExpectReplicaMatchesPrimary();

  // A second compaction cycle hands off again: retention is refreshed each
  // time, not a one-shot.
  ASSERT_EQ(primary_->Compact(), Status::kOk);
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(primary_->Put("again" + std::to_string(i), "z", Label::Bottom(), Label::Top()),
              Status::kOk);
  }
  SyncOnce();
  EXPECT_TRUE(session_->FullySynced());
  EXPECT_EQ(session_->stats().snapshots_shipped, initial_images);
  EXPECT_EQ(session_->stats().gen_marks_sent, 4u);
  ExpectReplicaMatchesPrimary();
}

TEST_F(ReplProtocolTest, LaggingFollowerStillSnapshotsAcrossCompaction) {
  OpenPrimary(1, /*compact_min=*/1024, /*retain_tail_bytes=*/64);  // tiny tail
  OpenReplica(1);
  SyncOnce();
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(primary_->Put("k" + std::to_string(i), std::string(100, 'x'), Label::Bottom(),
                            Label::Top()),
              Status::kOk);
  }
  // The follower never applied this span, and the retained tail (64 bytes)
  // does not reach back to its cursor: compaction must re-image as before.
  ASSERT_EQ(primary_->Compact(), Status::kOk);
  SyncOnce();
  EXPECT_TRUE(session_->FullySynced());
  EXPECT_GE(session_->stats().snapshots_shipped, 1u);
  EXPECT_EQ(session_->stats().gen_marks_sent, 0u);
  ExpectReplicaMatchesPrimary();
}

// --- The read gate: lease, cursor token, labels ------------------------------

TEST_F(ReplProtocolTest, ReadGateEnforcesLeaseCursorAndLabels) {
  OpenPrimary(1);
  OpenReplica(1, /*follower_id=*/1);
  const Label secrecy({{H(7), Level::kL3}}, Level::kStar);
  ASSERT_EQ(primary_->Put("doc", "classified", secrecy, Label::Top()), Status::kOk);

  ReadGate gate(replica_.get());
  const replwire::ReadCursorToken no_token;

  // Before any traffic there is no lease at all: unbounded staleness, so
  // even a token-less read refuses.
  EXPECT_EQ(gate.Serve("doc", Label::Top(), no_token).status,
            ReadStatus::kRefusedStaleLease);

  SyncOnce();  // stamps the lease and applies the record

  // Fresh lease + sufficient clearance: served, with the record's bytes.
  ReadResult r = gate.Serve("doc", Label::Top(), no_token);
  EXPECT_EQ(r.status, ReadStatus::kOk);
  EXPECT_EQ(r.value, "classified");
  EXPECT_TRUE(r.secrecy.Equals(secrecy));

  // Insufficient clearance (no H(7) grant): the delivery check refuses —
  // same verdict a primary-side read would produce, same charged formula.
  EXPECT_EQ(gate.Serve("doc", Label(Level::kL0), no_token).status,
            ReadStatus::kAccessDenied);
  EXPECT_EQ(gate.Serve("missing", Label::Top(), no_token).status,
            ReadStatus::kNotFound);

  // Read-your-writes: a token at the primary's tail after an unreplicated
  // write refuses with cursor lag until the span ships.
  ASSERT_EQ(primary_->Put("doc2", "newer", Label::Bottom(), Label::Top()), Status::kOk);
  replwire::ReadCursorToken token;
  token.source_id = 0x5EED;  // OpenPrimary's hub source id
  token.shard = 0;
  token.generation = primary_->shard_wal_generation(0);
  token.offset = primary_->shard_wal_offset(0);
  EXPECT_EQ(gate.Serve("doc2", Label::Top(), token).status,
            ReadStatus::kRefusedCursorLag);
  SyncOnce();
  EXPECT_EQ(gate.Serve("doc2", Label::Top(), token).status, ReadStatus::kOk);

  // A token from some other primary's history never matches.
  replwire::ReadCursorToken foreign = token;
  foreign.source_id = 0xDEAD;
  EXPECT_EQ(gate.Serve("doc2", Label::Top(), foreign).status,
            ReadStatus::kRefusedCursorLag);

  // Primary-mode gate (the K=1 baseline): always admits its own tokens,
  // staleness identically zero.
  ReadGate pgate(primary_.get(), /*source_id=*/0x5EED);
  r = pgate.Serve("doc2", Label::Top(), token);
  EXPECT_EQ(r.status, ReadStatus::kOk);
  EXPECT_EQ(r.staleness_cycles, 0u);
  EXPECT_EQ(pgate.Serve("doc", Label(Level::kL0), no_token).status,
            ReadStatus::kAccessDenied);
}

TEST_F(ReplProtocolTest, RouteReadPrefersCoveredFollowersAndSticksPerKey) {
  OpenPrimary(1);
  // Two identified followers, one anonymous mirror (never routable).
  FollowerSession* a = session_;
  FollowerSession* b = hub_->OpenSession();
  FollowerSession* mirror = hub_->OpenSession();
  auto replica_a = OpenNamedReplica("ra", 1, 1);
  auto replica_b = OpenNamedReplica("rb", 1, 2);
  auto replica_m = OpenNamedReplica("rm", 1, 0);
  ASSERT_EQ(primary_->Put("k", "v", Label::Bottom(), Label::Top()), Status::kOk);
  SyncPair(a, replica_a.get());
  SyncPair(b, replica_b.get());
  SyncPair(mirror, replica_m.get());

  const replwire::ReadCursorToken no_token;
  // Sticky: the same key routes to the same follower every time.
  FollowerSession* first = hub_->RouteRead("user-alpha", no_token);
  ASSERT_NE(first, nullptr);
  EXPECT_NE(first, mirror) << "anonymous mirrors are not read targets";
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(hub_->RouteRead("user-alpha", no_token), first);
  }
  // Spread: across many keys, both identified followers get traffic.
  bool saw_a = false;
  bool saw_b = false;
  for (int i = 0; i < 64; ++i) {
    FollowerSession* s = hub_->RouteRead("user" + std::to_string(i), no_token);
    saw_a |= s == a;
    saw_b |= s == b;
  }
  EXPECT_TRUE(saw_a && saw_b);

  // A token only one follower covers steers routing to that follower.
  ASSERT_EQ(primary_->Put("k2", "v2", Label::Bottom(), Label::Top()), Status::kOk);
  SyncPair(a, replica_a.get());  // a catches up; b stays behind
  replwire::ReadCursorToken token;
  token.source_id = 0x5EED;
  token.generation = primary_->shard_wal_generation(0);
  token.offset = primary_->shard_wal_offset(0);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(hub_->RouteRead("user" + std::to_string(i), token), a);
  }
}

// --- End to end over simnet/netd ---------------------------------------------

class ReplEndToEndTest : public ::testing::Test {
 protected:
  static constexpr uint16_t kReplPort = 7000;
  static constexpr uint16_t kFollowerPortBase = 7100;
  // Every end-to-end test runs authenticated: both ends share this token.
  static constexpr uint64_t kAuthToken = 0x7E57AC75;

  void BootPrimary(const std::string& dir, uint64_t boot_key = 0x0451,
                   uint32_t max_followers = 4) {
    FileServerOptions opts;
    opts.data_dir = dir;
    opts.shards = 4;
    opts.replication.listen_tcp_port = kReplPort;
    opts.replication.auth_token = kAuthToken;
    opts.replication.max_followers = max_followers;
    fleet_ = std::make_unique<ReplicationFleet>(boot_key, opts);
  }

  size_t AddFollower(const std::string& dir, uint64_t boot_key, uint64_t follower_id = 0,
                     uint16_t read_tcp_port = 0) {
    StoreOptions opts;
    opts.dir = dir;
    opts.shards = 4;
    FollowerOptions fopts;
    fopts.auth_token = kAuthToken;
    fopts.follower_id = follower_id;
    return fleet_->AddFollower(boot_key, next_follower_port_++, opts, fopts, read_tcp_port);
  }

  void PumpUntilSynced(int max_iters = 5000) {
    ASSERT_TRUE(fleet_->PumpUntilSynced(max_iters)) << "replication never quiesced";
  }

  // A client in the primary's kernel exercising the labeled fs protocol.
  void RunFsWorkload() {
    Kernel& kernel = fleet_->primary()->kernel();
    SpawnArgs cargs;
    cargs.name = "client";
    client_ = kernel.CreateProcess(std::make_unique<RecorderProcess>(&received_), cargs);
    kernel.WithProcessContext(client_, [&](ProcessContext& ctx) {
      client_port_ = ctx.NewPort(Label::Top());
      ASSERT_EQ(ctx.SetPortLabel(client_port_, Label::Top()), Status::kOk);
    });
    // Public files.
    for (int i = 0; i < 6; ++i) {
      FsRequest(fs_proto::kCreate, "pub" + std::to_string(i), {1, 0, 0, 0, 0});
      FsWrite("pub" + std::to_string(i), "public contents " + std::to_string(i));
    }
    // Private files in fresh compartments, with integrity requirements.
    for (int i = 0; i < 6; ++i) {
      kernel.WithProcessContext(client_, [&](ProcessContext& ctx) {
        const Handle taint = ctx.NewHandle();
        const Handle grant = ctx.NewHandle();
        taints_.push_back(taint);
        grants_.push_back(grant);
        Message m;
        m.type = fs_proto::kCreate;
        m.data = "priv" + std::to_string(i);
        m.words = {1, taint.value(), LevelOrdinal(Level::kL3), grant.value(),
                   LevelOrdinal(Level::kL0)};
        m.reply_port = client_port_;
        SendArgs args;
        args.decont_send = Label({{taint, Level::kStar}}, Level::kL3);
        args.decont_receive = Label({{taint, Level::kL3}}, Level::kStar);
        ASSERT_EQ(ctx.Send(fleet_->primary()->fs()->service_port(), std::move(m), args),
                  Status::kOk);
      });
      fleet_->Pump();
      // Integrity-protected write: V must prove the grant compartment.
      SendArgs wargs;
      wargs.verify = Label({{grants_.back(), Level::kL0}}, Level::kL3);
      FsRequest(fs_proto::kWrite,
                "priv" + std::to_string(i) + "\nsecret " + std::to_string(i), {1}, wargs);
    }
    FsRequest(fs_proto::kUnlink, "pub3", {1});
  }

  void FsRequest(uint64_t type, const std::string& path, std::vector<uint64_t> words,
                 const SendArgs& args = SendArgs()) {
    fleet_->primary()->kernel().WithProcessContext(client_, [&](ProcessContext& ctx) {
      Message m;
      m.type = type;
      m.data = path;
      m.words = std::move(words);
      m.reply_port = client_port_;
      ASSERT_EQ(ctx.Send(fleet_->primary()->fs()->service_port(), std::move(m), args),
                Status::kOk);
    });
    fleet_->Pump();
  }

  void FsWrite(const std::string& path, const std::string& contents) {
    FsRequest(fs_proto::kWrite, path + "\n" + contents, {1});
  }

  static void ExpectStoresIdentical(const DurableStore& a, const DurableStore& b) {
    ASSERT_EQ(a.size(), b.size());
    a.ForEach([&](const std::string& key, const StoreRecord& want) {
      const StoreRecord* got = b.Get(key);
      ASSERT_NE(got, nullptr) << key;
      EXPECT_EQ(got->value, want.value) << key;
      EXPECT_TRUE(got->secrecy.Equals(want.secrecy)) << key;
      EXPECT_TRUE(got->integrity.Equals(want.integrity)) << key;
      // Handle state, bit for bit: same handles at the same levels.
      EXPECT_EQ(got->secrecy.Entries(), want.secrecy.Entries()) << key;
      EXPECT_EQ(got->integrity.Entries(), want.integrity.Entries()) << key;
    });
  }

  TempDir dir_;
  std::unique_ptr<ReplicationFleet> fleet_;
  uint16_t next_follower_port_ = kFollowerPortBase;
  ProcessId client_ = kNoProcess;
  Handle client_port_;
  std::vector<Handle> taints_;
  std::vector<Handle> grants_;
  std::vector<RecorderProcess::Received> received_;
};

TEST_F(ReplEndToEndTest, PrimaryKillPromoteMatchesCrashRecovery) {
  const std::string primary_dir = dir_.path() + "/primary";
  const std::string follower_dir = dir_.path() + "/follower";
  BootPrimary(primary_dir);
  AddFollower(follower_dir, 0x0452);
  RunFsWorkload();
  PumpUntilSynced();

  // Kill the primary machine mid-stream (the session is live) and promote.
  FollowerWorld* follower = fleet_->follower(0);
  EXPECT_GE(follower->follower()->sessions_accepted(), 1u);
  fleet_->KillPrimary();
  ASSERT_EQ(follower->Promote(), Status::kOk);
  EXPECT_TRUE(follower->follower()->replica()->promoted());

  // Single-node crash recovery of the dead primary's disk...
  StoreOptions recover;
  recover.dir = primary_dir;
  recover.shards = 4;
  auto recovered = DurableStore::Open(recover);
  ASSERT_TRUE(recovered.ok());
  // ...must match the promoted follower's store bit for bit.
  ExpectStoresIdentical(*recovered.value(), *follower->follower()->replica()->store());

  // And the promoted image boots a real file server: reopen the follower
  // directory as a primary file server and serve a private file with its
  // original contamination.
  fleet_.reset();
  FileServerOptions fs_opts;
  fs_opts.data_dir = follower_dir;
  fs_opts.shards = 4;
  auto fs_code = std::make_unique<FileServerProcess>(fs_opts);
  FileServerProcess* fs = fs_code.get();
  EXPECT_EQ(fs->file_count(), 11u);  // 12 created, 1 unlinked
  Kernel kernel(0x0999);
  fs->ReserveRecoveredHandles(kernel);
  kernel.CreateProcess(std::move(fs_code), fs->RecoverySpawnArgs("fs"));

  std::vector<RecorderProcess::Received> received;
  SpawnArgs cargs;
  cargs.name = "reader";
  cargs.recv_label = Label({{taints_[2], Level::kL3}}, Level::kL2);
  const ProcessId reader =
      kernel.CreateProcess(std::make_unique<RecorderProcess>(&received), cargs);
  Handle reader_port;
  kernel.WithProcessContext(reader, [&](ProcessContext& ctx) {
    reader_port = ctx.NewPort(Label::Top());
    ASSERT_EQ(ctx.SetPortLabel(reader_port, Label::Top()), Status::kOk);
    Message m;
    m.type = fs_proto::kRead;
    m.data = "priv2";
    m.words = {1};
    m.reply_port = reader_port;
    ASSERT_EQ(ctx.Send(fs->service_port(), std::move(m), SendArgs()), Status::kOk);
  });
  kernel.RunUntilIdle();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].msg.data, "secret 2");
  // The reply contaminated the reader with the ORIGINAL taint handle — the
  // compartment survived primary death, shipping, and promotion.
  EXPECT_EQ(received[0].send_label_after.Get(taints_[2]), Level::kL3);
}

TEST_F(ReplEndToEndTest, TornBatchesAtTheFollowerReassemble) {
  BootPrimary(dir_.path() + "/primary");
  AddFollower(dir_.path() + "/follower", 0x0452);
  fleet_->link(0)->set_max_chunk(7);  // fragment every frame across many deliveries
  RunFsWorkload();
  PumpUntilSynced(20000);
  ExpectStoresIdentical(*fleet_->primary()->fs()->store(),
                        *fleet_->follower(0)->follower()->replica()->store());
}

TEST_F(ReplEndToEndTest, ThreeFollowersFanOutFromOnePrimary) {
  BootPrimary(dir_.path() + "/primary");
  AddFollower(dir_.path() + "/f1", 0x1001, /*follower_id=*/1);
  AddFollower(dir_.path() + "/f2", 0x1002, /*follower_id=*/2);
  AddFollower(dir_.path() + "/f3", 0x1003, /*follower_id=*/3);
  RunFsWorkload();
  PumpUntilSynced();

  const ReplicationEndpoint* endpoint = fleet_->primary()->fs()->replication();
  ASSERT_NE(endpoint, nullptr);
  EXPECT_EQ(endpoint->follower_count(), 3u);
  EXPECT_EQ(endpoint->busy_refusals(), 0u);
  ASSERT_NE(endpoint->hub(), nullptr);
  EXPECT_EQ(endpoint->hub()->session_count(), 3u);
  // Every follower holds the full labeled state, each via its own cursors.
  for (size_t i = 0; i < 3; ++i) {
    ExpectStoresIdentical(*fleet_->primary()->fs()->store(),
                          *fleet_->follower(i)->follower()->replica()->store());
  }
  // Fan-out was fed through the shared frame cache, not three log reads.
  EXPECT_GT(endpoint->hub()->cache_stats().hits, 0u);
  // Lease stamps reached every replica, designating the lowest id.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_GT(fleet_->follower(i)->follower()->replica()->lease_until(), 0u);
  }
}

TEST_F(ReplEndToEndTest, LeaseExpiryPromotesExactlyTheDesignatedSuccessor) {
  BootPrimary(dir_.path() + "/primary");
  // Deliberately out-of-order ids: the successor rule must pick id 3 (the
  // lowest), which lives at follower INDEX 1.
  AddFollower(dir_.path() + "/f-seven", 0x2001, /*follower_id=*/7);
  AddFollower(dir_.path() + "/f-three", 0x2002, /*follower_id=*/3);
  RunFsWorkload();
  PumpUntilSynced();
  // Let fresh heartbeats distribute the final designation to everyone, then
  // verify both followers agree on the one successor BEFORE the crash —
  // that agreement is what makes the promote race safe.
  for (int i = 0; i < 200; ++i) {
    fleet_->Pump();
  }
  ASSERT_EQ(fleet_->follower(0)->follower()->replica()->successor_id(), 3u);
  ASSERT_EQ(fleet_->follower(1)->follower()->replica()->successor_id(), 3u);

  fleet_->KillPrimary();
  // Nobody refreshes the lease now; the followers' own lease-check ticks
  // advance the virtual clock until it expires.
  for (int i = 0; i < 5000 && fleet_->auto_promoted_count() == 0; ++i) {
    fleet_->Pump();
  }
  EXPECT_EQ(fleet_->auto_promoted_count(), 1) << "exactly one follower may take over";
  EXPECT_EQ(fleet_->auto_promoted_index(), 1) << "the designated id-3 follower";
  EXPECT_TRUE(fleet_->follower(1)->follower()->replica()->promoted());
  EXPECT_FALSE(fleet_->follower(0)->follower()->replica()->promoted());

  // Keep pumping: the bystander sees its own lease run out too, and must
  // keep standing by — never promote late.
  for (int i = 0; i < 500; ++i) {
    fleet_->Pump();
  }
  EXPECT_EQ(fleet_->auto_promoted_count(), 1);
  EXPECT_TRUE(fleet_->follower(0)->follower()->lease_expired());
  EXPECT_FALSE(fleet_->follower(0)->follower()->replica()->promoted());

  // The auto-promoted state is bit-identical to single-node crash recovery
  // of the dead primary's disk — same acceptance bar as operator promote.
  StoreOptions recover;
  recover.dir = dir_.path() + "/primary";
  recover.shards = 4;
  auto recovered = DurableStore::Open(recover);
  ASSERT_TRUE(recovered.ok());
  ExpectStoresIdentical(*recovered.value(),
                        *fleet_->follower(1)->follower()->replica()->store());
}

TEST_F(ReplEndToEndTest, AutoPromotedImageServesAndOldPrimaryReFollows) {
  const std::string primary_dir = dir_.path() + "/primary";
  const std::string follower_dir = dir_.path() + "/follower";
  BootPrimary(primary_dir);
  AddFollower(follower_dir, 0x3001, /*follower_id=*/1);
  RunFsWorkload();
  PumpUntilSynced();
  for (int i = 0; i < 200; ++i) {
    fleet_->Pump();
  }
  ASSERT_EQ(fleet_->follower(0)->follower()->replica()->successor_id(), 1u);

  fleet_->KillPrimary();
  for (int i = 0; i < 5000 && fleet_->auto_promoted_count() == 0; ++i) {
    fleet_->Pump();
  }
  ASSERT_EQ(fleet_->auto_promoted_count(), 1);

  // Close the loop: the promoted directory boots as the NEW primary, and
  // the dead primary's directory re-follows it. Its cursor names the dead
  // primary's history, so catch-up arrives as snapshots.
  fleet_.reset();
  BootPrimary(follower_dir, /*boot_key=*/0x0777);
  AddFollower(primary_dir, 0x0778, /*follower_id=*/2);
  RunFsWorkload();  // fresh writes on the new primary
  PumpUntilSynced(20000);
  EXPECT_GE(fleet_->follower(0)->follower()->replica()->stats().snapshots_installed, 1u);
  ExpectStoresIdentical(*fleet_->primary()->fs()->store(),
                        *fleet_->follower(0)->follower()->replica()->store());
}

TEST_F(ReplEndToEndTest, OverCapacityFollowerGetsBusyFrameAndBacksOff) {
  BootPrimary(dir_.path() + "/primary", 0x0451, /*max_followers=*/1);
  AddFollower(dir_.path() + "/f1", 0x4001, /*follower_id=*/1);
  PumpUntilSynced();  // follower 1 owns the only slot
  AddFollower(dir_.path() + "/f2", 0x4002, /*follower_id=*/2);

  const int kPumps = 300;
  for (int i = 0; i < kPumps; ++i) {
    fleet_->Pump();
  }
  const ReplicationEndpoint* endpoint = fleet_->primary()->fs()->replication();
  const FollowerProcess* refused = fleet_->follower(1)->follower();
  // The refusal was explicit — a kBusy frame, not a silent close — and the
  // follower honored its back-off hint instead of hot-reconnecting: session
  // churn stays far below one per pump.
  EXPECT_GE(endpoint->busy_refusals(), 1u);
  EXPECT_GE(refused->busy_signals(), 1u);
  EXPECT_GT(refused->backoff_until_cycles(), 0u);
  EXPECT_LT(refused->sessions_accepted(), static_cast<uint64_t>(kPumps) / 2);
  EXPECT_EQ(refused->replica()->store()->size(), 0u) << "no data crossed the refusal";
  // The in-capacity follower was never disturbed.
  EXPECT_EQ(endpoint->follower_count(), 1u);
  EXPECT_TRUE(endpoint->hub()->AllFullySynced());
}

// --- Follower reads over the wire --------------------------------------------

TEST_F(ReplEndToEndTest, ReadYourWritesRefusesLaggingFollower) {
  BootPrimary(dir_.path() + "/primary");
  AddFollower(dir_.path() + "/follower", 0x0452, /*follower_id=*/1,
              /*read_tcp_port=*/7500);
  RunFsWorkload();
  PumpUntilSynced();

  const DurableStore* pstore = fleet_->primary()->fs()->store();
  const ReplicationHub* hub = fleet_->primary()->fs()->replication()->hub();
  ASSERT_NE(hub, nullptr);
  ReadClient reader(&fleet_->follower(0)->net(), 7500, kAuthToken);
  const auto pump = [&] { fleet_->Pump(); };

  // Synced follower, fresh lease, no token: the public file is served with
  // its replicated bytes.
  ReadResult r;
  ASSERT_TRUE(reader.Read("pub0", Label::Top(), {}, pump, &r));
  EXPECT_EQ(r.status, ReadStatus::kOk);
  const StoreRecord* want = pstore->Get("pub0");
  ASSERT_NE(want, nullptr);
  EXPECT_EQ(r.value, want->value);

  // Pause the wire and write at the primary: the follower now lags the
  // session's token, and the gate must refuse rather than serve the old
  // bytes — never a read below the token.
  fleet_->link(0)->set_paused(true);
  FsRequest(fs_proto::kCreate, "late", {1, 0, 0, 0, 0});
  FsWrite("late", "written after the pause");
  replwire::ReadCursorToken token;
  token.source_id = hub->source_id();
  token.shard = pstore->ShardIndexOf("late");
  token.generation = pstore->shard_wal_generation(static_cast<uint32_t>(token.shard));
  token.offset = pstore->shard_wal_offset(static_cast<uint32_t>(token.shard));
  ASSERT_TRUE(reader.Read("late", Label::Top(), token, pump, &r));
  EXPECT_EQ(r.status, ReadStatus::kRefusedCursorLag);
  EXPECT_TRUE(r.value.empty());
  // The hub's router agrees: no follower covers this token, read at the
  // primary instead.
  EXPECT_EQ(hub->RouteRead("late", token), nullptr);
  // A token-less read of OLD data is still fine: staleness is bounded by
  // the lease, and this reader never wrote.
  ASSERT_TRUE(reader.Read("pub1", Label::Top(), {}, pump, &r));
  EXPECT_EQ(r.status, ReadStatus::kOk);

  // Unpause and let the span ship: the same token is now covered and the
  // read returns the new bytes.
  fleet_->link(0)->set_paused(false);
  PumpUntilSynced();
  ASSERT_TRUE(reader.Read("late", Label::Top(), token, pump, &r));
  EXPECT_EQ(r.status, ReadStatus::kOk);
  EXPECT_EQ(r.value, "written after the pause");
  EXPECT_EQ(hub->RouteRead("late", token), hub->sessions()[0].get());

  // Label enforcement crossed the wire too: the private files refuse a
  // clearance-less reader and serve a cleared one, exactly like the
  // primary's own delivery check.
  ASSERT_TRUE(reader.Read("priv0", Label(Level::kL0), {}, pump, &r));
  EXPECT_EQ(r.status, ReadStatus::kAccessDenied);
  ASSERT_TRUE(reader.Read("priv0", Label::Top(), {}, pump, &r));
  EXPECT_EQ(r.status, ReadStatus::kOk);
  const StoreRecord* priv = pstore->Get("priv0");
  ASSERT_NE(priv, nullptr);
  EXPECT_TRUE(r.secrecy.Equals(priv->secrecy));
}

TEST_F(ReplEndToEndTest, StaleLeaseFollowerRefusesAllReads) {
  // A short lease so the test expires it in a few hundred pumps.
  FileServerOptions opts;
  opts.data_dir = dir_.path() + "/primary";
  opts.shards = 4;
  opts.replication.listen_tcp_port = kReplPort;
  opts.replication.auth_token = kAuthToken;
  opts.replication.lease_interval_cycles = 2'000'000;
  fleet_ = std::make_unique<ReplicationFleet>(0x0451, opts);
  StoreOptions fopts_store;
  fopts_store.dir = dir_.path() + "/follower";
  fopts_store.shards = 4;
  FollowerOptions fopts;
  fopts.auth_token = kAuthToken;
  fopts.follower_id = 1;
  fopts.auto_promote = false;  // observe the expiry, don't fail over
  fleet_->AddFollower(0x0452, kFollowerPortBase, fopts_store, fopts,
                      /*read_tcp_port=*/7500);
  RunFsWorkload();
  PumpUntilSynced();

  ReadClient reader(&fleet_->follower(0)->net(), 7500, kAuthToken);
  const auto pump = [&] { fleet_->Pump(); };
  ReadResult r;
  ASSERT_TRUE(reader.Read("pub0", Label::Top(), {}, pump, &r));
  ASSERT_EQ(r.status, ReadStatus::kOk);

  // Kill the primary. The follower keeps running; every OnIdle charges a
  // lease-check tick, so virtual time marches toward the deadline.
  fleet_->KillPrimary();
  const auto follower_pump = [&] { fleet_->follower(0)->Pump(); };
  for (int i = 0; i < 500 && !fleet_->follower(0)->follower()->lease_expired(); ++i) {
    follower_pump();
  }
  ASSERT_TRUE(fleet_->follower(0)->follower()->lease_expired());

  // Unbounded staleness: even token-less reads of data the follower holds
  // refuse until a live primary re-stamps the lease.
  ASSERT_TRUE(reader.Read("pub0", Label::Top(), {}, follower_pump, &r));
  EXPECT_EQ(r.status, ReadStatus::kRefusedStaleLease);
  EXPECT_GT(r.staleness_cycles, 0u);
}

TEST_F(ReplEndToEndTest, FleetMetricsArePerReplicaAndPerFollowerReadCounters) {
  // Two follower machines are two kernels publishing the same gauge names;
  // the fleet prefixes each by its index so one snapshot carries every
  // machine instead of whichever gauge group registered last. Adoption of
  // replicated labels also lands in the provenance ledger as kAdopt edges.
  obs::ProvenanceLedger::SetEnabled(true);
  obs::ProvenanceLedger::Get().Clear();
  BootPrimary(dir_.path() + "/primary");
  AddFollower(dir_.path() + "/f1", 0x0452, /*follower_id=*/1, /*read_tcp_port=*/7500);
  AddFollower(dir_.path() + "/f2", 0x0453, /*follower_id=*/2, /*read_tcp_port=*/7501);
  RunFsWorkload();
  PumpUntilSynced();

  const auto snap = obs::Registry::Get().Snapshot();
  // Distinct, simultaneously-present names: the primary keeps the bare
  // names; followers are replica1. / replica2. by join order.
  ASSERT_EQ(snap.count("kernel.stats.deliveries"), 1u);
  ASSERT_EQ(snap.count("replica1.kernel.stats.deliveries"), 1u);
  ASSERT_EQ(snap.count("replica2.kernel.stats.deliveries"), 1u);
  EXPECT_GT(snap.at("kernel.stats.deliveries"), 0.0);
  EXPECT_GT(snap.at("replica1.kernel.stats.deliveries"), 0.0);
  EXPECT_GT(snap.at("replica2.kernel.stats.deliveries"), 0.0);
  EXPECT_EQ(snap.count("replica1.kernel.mem.total_bytes"), 1u);
  EXPECT_EQ(snap.count("replica2.kernel.mem.total_bytes"), 1u);

  // Applying replicated records journals label adoption: every shard apply
  // of a Put is an [adopt] edge, so a replica's labels are explainable too.
  bool saw_adopt = false;
  for (const auto& e : obs::ProvenanceLedger::Get().edges()) {
    if (e.kind == obs::EdgeKind::kAdopt) {
      EXPECT_EQ(e.subject.rfind("store.shard", 0), 0u) << e.subject;
      EXPECT_EQ(e.source, "primary");
      saw_adopt = true;
    }
  }
  EXPECT_TRUE(saw_adopt);
  obs::ProvenanceLedger::Get().Clear();
  obs::ProvenanceLedger::SetEnabled(false);

  // The read plane scores per follower. Counters are process-global and
  // cumulative, so assert deltas, then check the hub's DebugStatus joins
  // them onto the right session by follower_id.
  obs::Registry& reg = obs::Registry::Get();
  const uint64_t f1_served = reg.counter("repl.follower1.reads_served").value();
  const uint64_t f1_denied = reg.counter("repl.follower1.reads_access_denied").value();
  const uint64_t f2_served = reg.counter("repl.follower2.reads_served").value();
  const uint64_t f2_denied = reg.counter("repl.follower2.reads_access_denied").value();

  ReadClient r1(&fleet_->follower(0)->net(), 7500, kAuthToken);
  ReadClient r2(&fleet_->follower(1)->net(), 7501, kAuthToken);
  const auto pump = [&] { fleet_->Pump(); };
  ReadResult r;
  ASSERT_TRUE(r1.Read("pub0", Label::Top(), {}, pump, &r));
  EXPECT_EQ(r.status, ReadStatus::kOk);
  ASSERT_TRUE(r1.Read("priv0", Label(Level::kL0), {}, pump, &r));
  EXPECT_EQ(r.status, ReadStatus::kAccessDenied);
  ASSERT_TRUE(r2.Read("pub1", Label::Top(), {}, pump, &r));
  EXPECT_EQ(r.status, ReadStatus::kOk);
  ASSERT_TRUE(r2.Read("pub2", Label::Top(), {}, pump, &r));
  EXPECT_EQ(r.status, ReadStatus::kOk);

  EXPECT_EQ(reg.counter("repl.follower1.reads_served").value(), f1_served + 1);
  EXPECT_EQ(reg.counter("repl.follower1.reads_access_denied").value(), f1_denied + 1);
  EXPECT_EQ(reg.counter("repl.follower2.reads_served").value(), f2_served + 2);

  const ReplicationHub* hub = fleet_->primary()->fs()->replication()->hub();
  ASSERT_NE(hub, nullptr);
  const HubDebugStatus status = hub->DebugStatus();
  ASSERT_EQ(status.sessions.size(), 2u);
  for (const auto& session : status.sessions) {
    if (session.follower_id == 1) {
      EXPECT_EQ(session.reads_served, f1_served + 1);
      EXPECT_EQ(session.reads_access_denied, f1_denied + 1);
    } else {
      ASSERT_EQ(session.follower_id, 2u);
      EXPECT_EQ(session.reads_served, f2_served + 2);
      EXPECT_EQ(session.reads_access_denied, f2_denied);
    }
  }
}

// --- OKWS integration: idd, ok-demux, and ok-dbproxy ship their stores -------

TEST(ReplOkwsTest, IddDemuxAndDbproxyStoresReplicateFromTheFullWorld) {
  TempDir dir;
  OkwsWorldConfig config;
  config.users = {{"alice", "pw-a"}, {"bob", "pw-b"}};
  config.services.push_back(
      {"echo", [] { return std::make_unique<EchoService>(); }, false, {}});
  config.idd_options.store_dir = dir.path() + "/idd";
  config.idd_options.replication.listen_tcp_port = 7100;
  config.demux_options.store_dir = dir.path() + "/demux";
  config.demux_options.replication.listen_tcp_port = 7101;
  config.dbproxy_options.store_dir = dir.path() + "/dbproxy";
  config.dbproxy_options.replication.listen_tcp_port = 7102;
  OkwsWorld world(config);
  world.PumpUntilReady();

  FollowerWorld idd_follower(0x1111, 7200,
                             StoreOptions{dir.path() + "/idd-replica", 4, 1024, 4});
  FollowerWorld demux_follower(0x2222, 7201,
                               StoreOptions{dir.path() + "/demux-replica", 4, 1024, 4});
  FollowerWorld dbproxy_follower(0x3333, 7202,
                                 StoreOptions{dir.path() + "/dbproxy-replica", 4, 1024, 4});
  ReplicationLink idd_link(&world.net(), 7100, &idd_follower.net(), 7200);
  ReplicationLink demux_link(&world.net(), 7101, &demux_follower.net(), 7201);
  ReplicationLink dbproxy_link(&world.net(), 7102, &dbproxy_follower.net(), 7202);
  const auto step_all = [&] {
    idd_link.Step();
    demux_link.Step();
    dbproxy_link.Step();
    world.Pump();
    idd_follower.Pump();
    demux_follower.Pump();
    dbproxy_follower.Pump();
  };

  // Real logins: idd persists identity bindings, demux persists sessions,
  // and ok-dbproxy's durable tables (password rows, binding records) churn.
  HttpLoadClient client(&world.net(), 80, 4);
  client.Enqueue(OkwsWorld::MakeRequest("/echo", "alice", "pw-a"), 1);
  client.Enqueue(OkwsWorld::MakeRequest("/echo", "bob", "pw-b"), 2);
  for (int i = 0; i < 4000 && !client.idle(); ++i) {
    client.Step();
    step_all();
  }
  ASSERT_EQ(client.results().size(), 2u);

  IddProcess* idd = nullptr;
  {
    Process* p = world.kernel().FindProcessByName("idd");
    ASSERT_NE(p, nullptr);
    idd = dynamic_cast<IddProcess*>(p->code.get());
    ASSERT_NE(idd, nullptr);
  }
  DemuxProcess* demux = nullptr;
  {
    Process* p = world.kernel().FindProcessByName("demux");
    ASSERT_NE(p, nullptr);
    demux = dynamic_cast<DemuxProcess*>(p->code.get());
    ASSERT_NE(demux, nullptr);
  }
  DbproxyProcess* dbproxy = nullptr;
  {
    Process* p = world.kernel().FindProcessByName("dbproxy");
    ASSERT_NE(p, nullptr);
    dbproxy = dynamic_cast<DbproxyProcess*>(p->code.get());
    ASSERT_NE(dbproxy, nullptr);
  }
  ASSERT_NE(idd->replication(), nullptr);
  ASSERT_NE(demux->replication(), nullptr);
  ASSERT_NE(dbproxy->replication(), nullptr);

  // Let the streams quiesce.
  for (int i = 0; i < 2000; ++i) {
    step_all();
    if (idd->replication()->hub()->AllFullySynced() &&
        demux->replication()->hub()->AllFullySynced() &&
        dbproxy->replication()->hub()->AllFullySynced()) {
      break;
    }
  }
  ASSERT_TRUE(idd->replication()->hub()->AllFullySynced());
  ASSERT_TRUE(demux->replication()->hub()->AllFullySynced());
  ASSERT_TRUE(dbproxy->replication()->hub()->AllFullySynced());

  // The identity bindings — per-user taint/grant labels included — the
  // session table, and the SQL table store now live on the follower
  // machines, bit for bit.
  const DurableStore* idd_replica = idd_follower.follower()->replica()->store();
  ASSERT_EQ(idd_replica->size(), idd->store()->size());
  EXPECT_EQ(idd_replica->size(), 2u);  // alice and bob
  idd->store()->ForEach([&](const std::string& key, const StoreRecord& want) {
    const StoreRecord* got = idd_replica->Get(key);
    ASSERT_NE(got, nullptr) << key;
    EXPECT_EQ(got->value, want.value);
    EXPECT_EQ(got->secrecy.Entries(), want.secrecy.Entries());
    EXPECT_EQ(got->integrity.Entries(), want.integrity.Entries());
  });
  const DurableStore* demux_replica = demux_follower.follower()->replica()->store();
  ASSERT_EQ(demux_replica->size(), demux->store()->size());
  EXPECT_EQ(demux_replica->size(), 2u);  // one session per user
  demux->store()->ForEach([&](const std::string& key, const StoreRecord& want) {
    const StoreRecord* got = demux_replica->Get(key);
    ASSERT_NE(got, nullptr) << key;
    EXPECT_EQ(got->value, want.value);
  });
  const DurableStore* dbproxy_replica = dbproxy_follower.follower()->replica()->store();
  ASSERT_EQ(dbproxy_replica->size(), dbproxy->store()->size());
  EXPECT_GT(dbproxy_replica->size(), 0u);  // schema + password rows + bindings
  dbproxy->store()->ForEach([&](const std::string& key, const StoreRecord& want) {
    const StoreRecord* got = dbproxy_replica->Get(key);
    ASSERT_NE(got, nullptr) << key;
    EXPECT_EQ(got->value, want.value);
    EXPECT_EQ(got->secrecy.Entries(), want.secrecy.Entries());
    EXPECT_EQ(got->integrity.Entries(), want.integrity.Entries());
  });
}

}  // namespace
}  // namespace asbestos
