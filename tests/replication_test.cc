// Label-preserving WAL replication (src/replication): wire format, source
// and replica cursor protocol (duplicates, gaps, snapshot catch-up), and
// the full two-machine path over simnet/netd — primary kill, Promote(),
// and bit-identical record/label/handle state versus single-node crash
// recovery.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/fs/file_server.h"
#include "src/net/client.h"
#include "src/okws/idd.h"
#include "src/okws/okws_world.h"
#include "src/okws/services.h"
#include "src/replication/follower.h"
#include "src/replication/link.h"
#include "src/replication/replica.h"
#include "src/replication/source.h"
#include "src/replication/wire.h"
#include "src/store/store.h"
#include "tests/test_util.h"

namespace asbestos {
namespace {

using testing::RecorderProcess;
using testing::TempDir;

Handle H(uint64_t v) { return Handle::FromValue(v); }

// --- Wire format -------------------------------------------------------------

TEST(ReplWireTest, FrameRoundTrip) {
  replwire::WireMessage batch;
  batch.type = replwire::kBatch;
  batch.shard = 3;
  batch.generation = 7;
  batch.offset = 4096;
  batch.payload = std::string("framed wal bytes\x00\x01", 18);

  std::string stream;
  replwire::AppendFrame(batch, &stream);
  replwire::WireMessage ack;
  ack.type = replwire::kAck;
  ack.shard = 3;
  ack.source_id = 0xABCDEF;
  ack.generation = 7;
  ack.offset = 8192;
  replwire::AppendFrame(ack, &stream);

  replwire::WireMessage out;
  ASSERT_EQ(replwire::ConsumeFrame(&stream, &out), replwire::FrameParse::kFrame);
  EXPECT_EQ(out.type, replwire::kBatch);
  EXPECT_EQ(out.shard, 3u);
  EXPECT_EQ(out.generation, 7u);
  EXPECT_EQ(out.offset, 4096u);
  EXPECT_EQ(out.payload, batch.payload);
  ASSERT_EQ(replwire::ConsumeFrame(&stream, &out), replwire::FrameParse::kFrame);
  EXPECT_EQ(out.type, replwire::kAck);
  EXPECT_EQ(out.source_id, 0xABCDEFu);
  EXPECT_EQ(out.offset, 8192u);
  EXPECT_TRUE(stream.empty());
}

TEST(ReplWireTest, TornFrameWaitsForMoreBytes) {
  replwire::WireMessage hello;
  hello.type = replwire::kHello;
  hello.source_id = 42;
  hello.shard_count = 4;
  std::string whole;
  replwire::AppendFrame(hello, &whole);

  replwire::WireMessage out;
  // Deliver the frame one byte at a time: every prefix parses as kNeedMore.
  std::string buffer;
  for (size_t i = 0; i + 1 < whole.size(); ++i) {
    buffer.push_back(whole[i]);
    ASSERT_EQ(replwire::ConsumeFrame(&buffer, &out), replwire::FrameParse::kNeedMore);
  }
  buffer.push_back(whole.back());
  ASSERT_EQ(replwire::ConsumeFrame(&buffer, &out), replwire::FrameParse::kFrame);
  EXPECT_EQ(out.source_id, 42u);
  EXPECT_EQ(out.shard_count, 4u);
}

TEST(ReplWireTest, CorruptFramePoisons) {
  replwire::WireMessage hello;
  hello.type = replwire::kHello;
  hello.source_id = 42;
  hello.shard_count = 4;
  std::string stream;
  replwire::AppendFrame(hello, &stream);
  stream[stream.size() - 1] ^= 0x55;  // flip payload bits: CRC must catch it
  replwire::WireMessage out;
  EXPECT_EQ(replwire::ConsumeFrame(&stream, &out), replwire::FrameParse::kCorrupt);
}

// --- Source ↔ replica protocol (no transport) --------------------------------

class ReplProtocolTest : public ::testing::Test {
 protected:
  void OpenPrimary(uint32_t shards, uint64_t compact_min = 1024) {
    StoreOptions opts;
    opts.dir = dir_.path() + "/primary";
    opts.shards = shards;
    opts.compact_min_log_records = compact_min;
    auto store = DurableStore::Open(opts);
    ASSERT_TRUE(store.ok());
    primary_ = store.take();
    source_ = std::make_unique<ReplicationSource>(primary_.get(), /*source_id=*/0x5EED);
  }

  void OpenReplica(uint32_t shards) {
    StoreOptions opts;
    opts.dir = dir_.path() + "/replica";
    opts.shards = shards;
    auto replica = ReplicaStore::Open(opts);
    ASSERT_TRUE(replica.ok());
    replica_ = replica.take();
  }

  // Parses a byte stream into individual frames.
  static std::vector<replwire::WireMessage> Parse(std::string stream) {
    std::vector<replwire::WireMessage> out;
    replwire::WireMessage m;
    while (replwire::ConsumeFrame(&stream, &m) == replwire::FrameParse::kFrame) {
      out.push_back(m);
    }
    EXPECT_TRUE(stream.empty());
    return out;
  }

  // One full exchange: hello/resume handshake, then frames and acks until
  // both sides go quiet.
  void SyncOnce() {
    std::string acks;
    for (const replwire::WireMessage& m : Parse(source_->SessionHello())) {
      ASSERT_EQ(replica_->HandleFrame(m, &acks), Status::kOk);
    }
    for (int round = 0; round < 100; ++round) {
      for (const replwire::WireMessage& a : Parse(std::move(acks))) {
        source_->HandleAck(a);
      }
      acks.clear();
      std::string frames;
      if (source_->PollFrames(1 << 16, ~0ULL, &frames) == 0) {
        break;
      }
      for (const replwire::WireMessage& m : Parse(std::move(frames))) {
        ASSERT_EQ(replica_->HandleFrame(m, &acks), Status::kOk);
      }
    }
    for (const replwire::WireMessage& a : Parse(std::move(acks))) {
      source_->HandleAck(a);
    }
  }

  void ExpectReplicaMatchesPrimary() {
    ASSERT_EQ(replica_->store()->size(), primary_->size());
    primary_->ForEach([&](const std::string& key, const StoreRecord& want) {
      const StoreRecord* got = replica_->store()->Get(key);
      ASSERT_NE(got, nullptr) << key;
      EXPECT_EQ(got->value, want.value) << key;
      EXPECT_TRUE(got->secrecy.Equals(want.secrecy)) << key;
      EXPECT_TRUE(got->integrity.Equals(want.integrity)) << key;
    });
  }

  TempDir dir_;
  std::unique_ptr<DurableStore> primary_;
  std::unique_ptr<ReplicationSource> source_;
  std::unique_ptr<ReplicaStore> replica_;
};

TEST_F(ReplProtocolTest, StreamsLabeledRecords) {
  OpenPrimary(4);
  OpenReplica(4);
  const Label secrecy({{H(77), Level::kL3}}, Level::kStar);
  const Label integrity({{H(88), Level::kL0}}, Level::kL3);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(primary_->Put("key" + std::to_string(i), "value" + std::to_string(i), secrecy,
                            integrity),
              Status::kOk);
  }
  ASSERT_EQ(primary_->Erase("key50"), Status::kOk);
  SyncOnce();
  EXPECT_TRUE(source_->FullySynced());
  ExpectReplicaMatchesPrimary();
  EXPECT_EQ(replica_->store()->Get("key50"), nullptr);
  // Labels came through the pickled WAL records and the canonical-rep
  // intern table: extensionally equal AND entry-for-entry identical.
  const StoreRecord* got = replica_->store()->Get("key1");
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->secrecy.Entries(), secrecy.Entries());
  EXPECT_EQ(got->integrity.Entries(), integrity.Entries());
}

TEST_F(ReplProtocolTest, ShardCountMismatchPoisonsSession) {
  OpenPrimary(4);
  OpenReplica(2);
  std::string acks;
  const auto frames = Parse(source_->SessionHello());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(replica_->HandleFrame(frames[0], &acks), Status::kInvalidArgs);
}

TEST_F(ReplProtocolTest, DuplicateAndReorderedBatchesApplyIdempotently) {
  OpenPrimary(1);
  OpenReplica(1);
  SyncOnce();  // establish the session at offset 0
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(primary_->Put("k" + std::to_string(i), "v", Label::Bottom(), Label::Top()),
              Status::kOk);
  }
  // Pull the pending span as several small batches without acking.
  std::string stream;
  ASSERT_GT(source_->PollFrames(/*max_batch_bytes=*/32, ~0ULL, &stream), 1u);
  std::vector<replwire::WireMessage> batches = Parse(std::move(stream));

  std::string acks;
  // Reordered: the second batch first — a gap, ignored but re-acked.
  ASSERT_EQ(replica_->HandleFrame(batches[1], &acks), Status::kOk);
  EXPECT_EQ(replica_->stats().gaps_ignored, 1u);
  // In-order apply.
  ASSERT_EQ(replica_->HandleFrame(batches[0], &acks), Status::kOk);
  ASSERT_EQ(replica_->HandleFrame(batches[1], &acks), Status::kOk);
  const uint64_t applied = replica_->stats().batches_applied;
  // Duplicates: both batches again — skipped, state unchanged.
  ASSERT_EQ(replica_->HandleFrame(batches[0], &acks), Status::kOk);
  ASSERT_EQ(replica_->HandleFrame(batches[1], &acks), Status::kOk);
  EXPECT_EQ(replica_->stats().batches_applied, applied);
  EXPECT_EQ(replica_->stats().duplicates_skipped, 2u);
  // Remaining batches in order; every ack (including re-acks) feeds back.
  for (size_t i = 2; i < batches.size(); ++i) {
    ASSERT_EQ(replica_->HandleFrame(batches[i], &acks), Status::kOk);
  }
  for (const replwire::WireMessage& a : Parse(std::move(acks))) {
    source_->HandleAck(a);
  }
  EXPECT_TRUE(source_->FullySynced());
  ExpectReplicaMatchesPrimary();
}

TEST_F(ReplProtocolTest, GapRewindsViaGoBackN) {
  OpenPrimary(1);
  OpenReplica(1);
  SyncOnce();
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(primary_->Put("k" + std::to_string(i), "v", Label::Bottom(), Label::Top()),
              Status::kOk);
  }
  std::string stream;
  ASSERT_GT(source_->PollFrames(32, ~0ULL, &stream), 2u);
  std::vector<replwire::WireMessage> batches = Parse(std::move(stream));
  // Deliver only the LAST batch: the replica ignores the gap and re-acks
  // its true position; the source rewinds and retransmits everything.
  std::string acks;
  ASSERT_EQ(replica_->HandleFrame(batches.back(), &acks), Status::kOk);
  for (const replwire::WireMessage& a : Parse(std::move(acks))) {
    source_->HandleAck(a);
  }
  EXPECT_EQ(source_->stats().rewinds, 1u);
  SyncOnce();
  EXPECT_TRUE(source_->FullySynced());
  ExpectReplicaMatchesPrimary();
}

TEST_F(ReplProtocolTest, CompactionForcesSnapshotCatchUp) {
  OpenPrimary(2);
  OpenReplica(2);
  const Label secrecy({{H(9), Level::kL3}}, Level::kStar);
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(primary_->Put("k" + std::to_string(i), std::string(100, 'x'), secrecy,
                            Label::Top()),
              Status::kOk);
  }
  // The WAL span a fresh follower would need is gone.
  ASSERT_EQ(primary_->Compact(), Status::kOk);
  EXPECT_EQ(primary_->wal_bytes(), 0u);
  SyncOnce();
  EXPECT_TRUE(source_->FullySynced());
  EXPECT_EQ(replica_->stats().snapshots_installed, 2u);
  ExpectReplicaMatchesPrimary();

  // Mid-session compaction: stream some, compact (generation bump), stream
  // more — the source notices the cursor's span vanished and re-images.
  for (int i = 0; i < 16; ++i) {
    ASSERT_EQ(primary_->Put("post" + std::to_string(i), "y", Label::Bottom(), Label::Top()),
              Status::kOk);
  }
  ASSERT_EQ(primary_->Compact(), Status::kOk);
  SyncOnce();
  EXPECT_TRUE(source_->FullySynced());
  ExpectReplicaMatchesPrimary();
  EXPECT_GE(replica_->stats().snapshots_installed, 3u);
}

TEST_F(ReplProtocolTest, PromoteRefusesFurtherFrames) {
  OpenPrimary(1);
  OpenReplica(1);
  SyncOnce();
  ASSERT_EQ(primary_->Put("k", "v", Label::Bottom(), Label::Top()), Status::kOk);
  std::string stream;
  ASSERT_EQ(source_->PollFrames(1 << 16, ~0ULL, &stream), 1u);
  const auto batches = Parse(std::move(stream));
  ASSERT_EQ(replica_->Promote(), Status::kOk);
  std::string acks;
  EXPECT_EQ(replica_->HandleFrame(batches[0], &acks), Status::kBadState);
  EXPECT_EQ(replica_->store()->Get("k"), nullptr);
}

TEST_F(ReplProtocolTest, WarmResumeAfterReplicaReboot) {
  OpenPrimary(2);
  OpenReplica(2);
  for (int i = 0; i < 32; ++i) {
    ASSERT_EQ(primary_->Put("k" + std::to_string(i), "v", Label::Bottom(), Label::Top()),
              Status::kOk);
  }
  SyncOnce();
  ASSERT_TRUE(source_->FullySynced());
  ASSERT_EQ(replica_->Checkpoint(), Status::kOk);
  const uint64_t snapshots_before = source_->stats().snapshots_shipped;

  // Reboot the replica: the checkpointed cursor lets the session resume
  // without re-imaging.
  replica_.reset();
  OpenReplica(2);
  for (int i = 32; i < 48; ++i) {
    ASSERT_EQ(primary_->Put("k" + std::to_string(i), "v", Label::Bottom(), Label::Top()),
              Status::kOk);
  }
  SyncOnce();
  EXPECT_TRUE(source_->FullySynced());
  EXPECT_EQ(source_->stats().snapshots_shipped, snapshots_before);
  ExpectReplicaMatchesPrimary();
}

TEST_F(ReplProtocolTest, PipelinedInOrderAcksNeverRewind) {
  OpenPrimary(1);
  OpenReplica(1);
  SyncOnce();
  for (int i = 0; i < 16; ++i) {
    ASSERT_EQ(primary_->Put("k" + std::to_string(i), "v", Label::Bottom(), Label::Top()),
              Status::kOk);
  }
  // Several small batches in flight at once, acks fed back in order — the
  // normal pipelined shape. None of these acks shows lost progress, so none
  // may trigger a retransmission.
  std::string stream;
  ASSERT_GT(source_->PollFrames(32, ~0ULL, &stream), 2u);
  std::string acks;
  for (const replwire::WireMessage& b : Parse(std::move(stream))) {
    ASSERT_EQ(replica_->HandleFrame(b, &acks), Status::kOk);
  }
  const uint64_t batches_before = source_->stats().batches_shipped;
  for (const replwire::WireMessage& a : Parse(std::move(acks))) {
    source_->HandleAck(a);
  }
  EXPECT_EQ(source_->stats().rewinds, 0u);
  std::string rest;
  EXPECT_EQ(source_->PollFrames(32, ~0ULL, &rest), 0u) << "nothing left to re-ship";
  EXPECT_EQ(source_->stats().batches_shipped, batches_before);
  EXPECT_TRUE(source_->FullySynced());
}

TEST_F(ReplProtocolTest, OversizedRecordShipsAsSingletonBatch) {
  OpenPrimary(1);
  OpenReplica(1);
  SyncOnce();
  // One record far beyond the batch limit, then a small one. The big record
  // must ship as exactly ONE oversized frame — not drag the rest of the log
  // with it past the budget.
  ASSERT_EQ(primary_->Put("big", std::string(8192, 'x'), Label::Bottom(), Label::Top()),
            Status::kOk);
  ASSERT_EQ(primary_->Put("small", "v", Label::Bottom(), Label::Top()), Status::kOk);
  std::string stream;
  ASSERT_EQ(source_->PollFrames(/*max_batch_bytes=*/256, /*max_total_bytes=*/512, &stream),
            1u)
      << "the total budget admits only the oversized singleton this poll";
  auto frames = Parse(std::move(stream));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_GT(frames[0].payload.size(), 8192u);   // the big record, whole
  EXPECT_LT(frames[0].payload.size(), 8192u + 256u)
      << "the small record must NOT have ridden along";
  std::string acks;
  ASSERT_EQ(replica_->HandleFrame(frames[0], &acks), Status::kOk);
  for (const replwire::WireMessage& a : Parse(std::move(acks))) {
    source_->HandleAck(a);
  }
  SyncOnce();
  EXPECT_TRUE(source_->FullySynced());
  ExpectReplicaMatchesPrimary();
}

TEST_F(ReplProtocolTest, CompactionDuringResumeWindowStillSnapshots) {
  OpenPrimary(1);
  OpenReplica(1);
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(primary_->Put("k" + std::to_string(i), "v", Label::Bottom(), Label::Top()),
              Status::kOk);
  }
  // Fresh replica acks an unknown position; BEFORE the source polls, a
  // compaction advances the generation. The source must still image the
  // shard (a generation-arithmetic sentinel would collide with the new
  // generation and stream garbage offsets instead).
  std::string acks;
  for (const replwire::WireMessage& m : Parse(source_->SessionHello())) {
    ASSERT_EQ(replica_->HandleFrame(m, &acks), Status::kOk);
  }
  for (const replwire::WireMessage& a : Parse(std::move(acks))) {
    source_->HandleAck(a);
  }
  ASSERT_EQ(primary_->Compact(), Status::kOk);  // generation 0 → 1
  std::string stream;
  ASSERT_EQ(source_->PollFrames(1 << 16, ~0ULL, &stream), 1u);
  auto frames = Parse(std::move(stream));
  ASSERT_EQ(frames[0].type, replwire::kSnapshot);
  acks.clear();
  ASSERT_EQ(replica_->HandleFrame(frames[0], &acks), Status::kOk);
  for (const replwire::WireMessage& a : Parse(std::move(acks))) {
    source_->HandleAck(a);
  }
  EXPECT_TRUE(source_->FullySynced());
  ExpectReplicaMatchesPrimary();
}

TEST_F(ReplProtocolTest, MismatchedAuthTokenShipsNothing) {
  OpenPrimary(4);
  // The primary requires a token; this replica was configured with another.
  source_ = std::make_unique<ReplicationSource>(primary_.get(), 0x5EED, /*auth_token=*/42);
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(primary_->Put("k" + std::to_string(i), "secret", Label::Bottom(), Label::Top()),
              Status::kOk);
  }
  StoreOptions opts;
  opts.dir = dir_.path() + "/replica";
  opts.shards = 4;
  auto replica = ReplicaStore::Open(opts, /*auth_token=*/7);
  ASSERT_TRUE(replica.ok());
  replica_ = replica.take();
  // The follower refuses the foreign hello outright...
  std::string acks;
  const auto hello = Parse(source_->SessionHello());
  ASSERT_EQ(hello.size(), 1u);
  EXPECT_EQ(replica_->HandleFrame(hello[0], &acks), Status::kAccessDenied);
  EXPECT_TRUE(acks.empty());
  // ...and even a forged ack with the wrong token moves nothing: every
  // shard stays in await-resume and no labeled byte leaves the source.
  replwire::WireMessage forged;
  forged.type = replwire::kAck;
  forged.token = 7;
  forged.shard = 0;
  source_->HandleAck(forged);
  std::string stream;
  EXPECT_EQ(source_->PollFrames(1 << 16, ~0ULL, &stream), 0u);
  EXPECT_TRUE(stream.empty());
  EXPECT_EQ(replica_->store()->size(), 0u);
}

TEST_F(ReplProtocolTest, MatchingAuthTokenSyncs) {
  OpenPrimary(2);
  source_ = std::make_unique<ReplicationSource>(primary_.get(), 0x5EED, /*auth_token=*/99);
  ASSERT_EQ(primary_->Put("k", "v", Label::Bottom(), Label::Top()), Status::kOk);
  StoreOptions opts;
  opts.dir = dir_.path() + "/replica";
  opts.shards = 2;
  auto replica = ReplicaStore::Open(opts, /*auth_token=*/99);
  ASSERT_TRUE(replica.ok());
  replica_ = replica.take();
  SyncOnce();
  EXPECT_TRUE(source_->FullySynced());
  ExpectReplicaMatchesPrimary();
}

// --- End to end over simnet/netd ---------------------------------------------

class ReplEndToEndTest : public ::testing::Test {
 protected:
  static constexpr uint16_t kReplPort = 7000;
  static constexpr uint16_t kFollowerPort = 7001;
  // Every end-to-end test runs authenticated: both ends share this token.
  static constexpr uint64_t kAuthToken = 0x7E57AC75;

  void BootPrimary(const std::string& dir, uint64_t boot_key = 0x0451) {
    FileServerOptions opts;
    opts.data_dir = dir;
    opts.shards = 4;
    opts.replication.listen_tcp_port = kReplPort;
    opts.replication.auth_token = kAuthToken;
    primary_ = std::make_unique<FsPrimaryWorld>(boot_key, opts);
    primary_->Pump();  // attach the listener
  }

  void BootFollower(const std::string& dir, uint64_t boot_key = 0x0452) {
    StoreOptions opts;
    opts.dir = dir;
    opts.shards = 4;
    follower_ = std::make_unique<FollowerWorld>(boot_key, kFollowerPort, opts, kAuthToken);
    follower_->Pump();
    link_ = std::make_unique<ReplicationLink>(&primary_->net(), kReplPort, &follower_->net(),
                                              kFollowerPort);
  }

  // Drives both machines and the wire until the stream quiesces.
  void PumpUntilSynced(int max_iters = 2000) {
    for (int i = 0; i < max_iters; ++i) {
      link_->Step();
      primary_->Pump();
      follower_->Pump();
      if (link_->connected() && primary_->fs()->replication() != nullptr &&
          primary_->fs()->replication()->source() != nullptr &&
          primary_->fs()->replication()->source()->FullySynced()) {
        return;
      }
    }
    FAIL() << "replication never quiesced";
  }

  // A client in the primary's kernel exercising the labeled fs protocol.
  void RunFsWorkload() {
    SpawnArgs cargs;
    cargs.name = "client";
    client_ = primary_->kernel().CreateProcess(std::make_unique<RecorderProcess>(&received_),
                                               cargs);
    primary_->kernel().WithProcessContext(client_, [&](ProcessContext& ctx) {
      client_port_ = ctx.NewPort(Label::Top());
      ASSERT_EQ(ctx.SetPortLabel(client_port_, Label::Top()), Status::kOk);
    });
    // Public files.
    for (int i = 0; i < 6; ++i) {
      FsRequest(fs_proto::kCreate, "pub" + std::to_string(i), {1, 0, 0, 0, 0});
      FsWrite("pub" + std::to_string(i), "public contents " + std::to_string(i));
    }
    // Private files in fresh compartments, with integrity requirements.
    for (int i = 0; i < 6; ++i) {
      primary_->kernel().WithProcessContext(client_, [&](ProcessContext& ctx) {
        const Handle taint = ctx.NewHandle();
        const Handle grant = ctx.NewHandle();
        taints_.push_back(taint);
        grants_.push_back(grant);
        Message m;
        m.type = fs_proto::kCreate;
        m.data = "priv" + std::to_string(i);
        m.words = {1, taint.value(), LevelOrdinal(Level::kL3), grant.value(),
                   LevelOrdinal(Level::kL0)};
        m.reply_port = client_port_;
        SendArgs args;
        args.decont_send = Label({{taint, Level::kStar}}, Level::kL3);
        args.decont_receive = Label({{taint, Level::kL3}}, Level::kStar);
        ASSERT_EQ(ctx.Send(primary_->fs()->service_port(), std::move(m), args), Status::kOk);
      });
      primary_->Pump();
      // Integrity-protected write: V must prove the grant compartment.
      SendArgs wargs;
      wargs.verify = Label({{grants_.back(), Level::kL0}}, Level::kL3);
      FsRequest(fs_proto::kWrite,
                "priv" + std::to_string(i) + "\nsecret " + std::to_string(i), {1}, wargs);
    }
    FsRequest(fs_proto::kUnlink, "pub3", {1});
  }

  void FsRequest(uint64_t type, const std::string& path, std::vector<uint64_t> words,
                 const SendArgs& args = SendArgs()) {
    primary_->kernel().WithProcessContext(client_, [&](ProcessContext& ctx) {
      Message m;
      m.type = type;
      m.data = path;
      m.words = std::move(words);
      m.reply_port = client_port_;
      ASSERT_EQ(ctx.Send(primary_->fs()->service_port(), std::move(m), args), Status::kOk);
    });
    primary_->Pump();
  }

  void FsWrite(const std::string& path, const std::string& contents) {
    FsRequest(fs_proto::kWrite, path + "\n" + contents, {1});
  }

  static void ExpectStoresIdentical(const DurableStore& a, const DurableStore& b) {
    ASSERT_EQ(a.size(), b.size());
    a.ForEach([&](const std::string& key, const StoreRecord& want) {
      const StoreRecord* got = b.Get(key);
      ASSERT_NE(got, nullptr) << key;
      EXPECT_EQ(got->value, want.value) << key;
      EXPECT_TRUE(got->secrecy.Equals(want.secrecy)) << key;
      EXPECT_TRUE(got->integrity.Equals(want.integrity)) << key;
      // Handle state, bit for bit: same handles at the same levels.
      EXPECT_EQ(got->secrecy.Entries(), want.secrecy.Entries()) << key;
      EXPECT_EQ(got->integrity.Entries(), want.integrity.Entries()) << key;
    });
  }

  TempDir dir_;
  std::unique_ptr<FsPrimaryWorld> primary_;
  std::unique_ptr<FollowerWorld> follower_;
  std::unique_ptr<ReplicationLink> link_;
  ProcessId client_ = kNoProcess;
  Handle client_port_;
  std::vector<Handle> taints_;
  std::vector<Handle> grants_;
  std::vector<RecorderProcess::Received> received_;
};

TEST_F(ReplEndToEndTest, PrimaryKillPromoteMatchesCrashRecovery) {
  const std::string primary_dir = dir_.path() + "/primary";
  const std::string follower_dir = dir_.path() + "/follower";
  BootPrimary(primary_dir);
  BootFollower(follower_dir);
  RunFsWorkload();
  PumpUntilSynced();

  // Kill the primary machine mid-stream (the session is live) and promote.
  link_.reset();  // the wire goes with the machine
  primary_.reset();
  ASSERT_EQ(follower_->Promote(), Status::kOk);
  EXPECT_TRUE(follower_->follower()->replica()->promoted());
  EXPECT_GE(follower_->follower()->sessions_accepted(), 1u);

  // Single-node crash recovery of the dead primary's disk...
  StoreOptions recover;
  recover.dir = primary_dir;
  recover.shards = 4;
  auto recovered = DurableStore::Open(recover);
  ASSERT_TRUE(recovered.ok());
  // ...must match the promoted follower's store bit for bit.
  ExpectStoresIdentical(*recovered.value(), *follower_->follower()->replica()->store());

  // And the promoted image boots a real file server: reopen the follower
  // directory as a primary file server and serve a private file with its
  // original contamination.
  follower_.reset();
  FileServerOptions fs_opts;
  fs_opts.data_dir = follower_dir;
  fs_opts.shards = 4;
  auto fs_code = std::make_unique<FileServerProcess>(fs_opts);
  FileServerProcess* fs = fs_code.get();
  EXPECT_EQ(fs->file_count(), 11u);  // 12 created, 1 unlinked
  Kernel kernel(0x0999);
  fs->ReserveRecoveredHandles(kernel);
  kernel.CreateProcess(std::move(fs_code), fs->RecoverySpawnArgs("fs"));

  std::vector<RecorderProcess::Received> received;
  SpawnArgs cargs;
  cargs.name = "reader";
  cargs.recv_label = Label({{taints_[2], Level::kL3}}, Level::kL2);
  const ProcessId reader =
      kernel.CreateProcess(std::make_unique<RecorderProcess>(&received), cargs);
  Handle reader_port;
  kernel.WithProcessContext(reader, [&](ProcessContext& ctx) {
    reader_port = ctx.NewPort(Label::Top());
    ASSERT_EQ(ctx.SetPortLabel(reader_port, Label::Top()), Status::kOk);
    Message m;
    m.type = fs_proto::kRead;
    m.data = "priv2";
    m.words = {1};
    m.reply_port = reader_port;
    ASSERT_EQ(ctx.Send(fs->service_port(), std::move(m), SendArgs()), Status::kOk);
  });
  kernel.RunUntilIdle();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].msg.data, "secret 2");
  // The reply contaminated the reader with the ORIGINAL taint handle — the
  // compartment survived primary death, shipping, and promotion.
  EXPECT_EQ(received[0].send_label_after.Get(taints_[2]), Level::kL3);
}

TEST_F(ReplEndToEndTest, TornBatchesAtTheFollowerReassemble) {
  BootPrimary(dir_.path() + "/primary");
  BootFollower(dir_.path() + "/follower");
  link_->set_max_chunk(7);  // fragment every frame across many deliveries
  RunFsWorkload();
  PumpUntilSynced(20000);
  ExpectStoresIdentical(*primary_->fs()->store(),
                        *follower_->follower()->replica()->store());
}

TEST_F(ReplEndToEndTest, PromoteThenReFollowOldPrimary) {
  const std::string primary_dir = dir_.path() + "/primary";
  const std::string follower_dir = dir_.path() + "/follower";
  BootPrimary(primary_dir);
  BootFollower(follower_dir);
  RunFsWorkload();
  PumpUntilSynced();

  // Fail over: the follower's directory becomes the NEW primary...
  link_.reset();
  primary_.reset();
  ASSERT_EQ(follower_->Promote(), Status::kOk);
  follower_.reset();
  BootPrimary(follower_dir, /*boot_key=*/0x0777);

  // ...and the OLD primary's directory re-follows it. Its cursor names the
  // dead primary's history, so catch-up arrives as snapshots.
  BootFollower(primary_dir, /*boot_key=*/0x0778);
  RunFsWorkload();  // fresh writes on the new primary
  PumpUntilSynced(20000);
  EXPECT_GE(follower_->follower()->replica()->stats().snapshots_installed, 1u);
  ExpectStoresIdentical(*primary_->fs()->store(),
                        *follower_->follower()->replica()->store());
}

// --- OKWS integration: idd and ok-demux ship their durable stores ------------

TEST(ReplOkwsTest, IddAndDemuxStoresReplicateFromTheFullWorld) {
  TempDir dir;
  OkwsWorldConfig config;
  config.users = {{"alice", "pw-a"}, {"bob", "pw-b"}};
  config.services.push_back(
      {"echo", [] { return std::make_unique<EchoService>(); }, false, {}});
  config.idd_options.store_dir = dir.path() + "/idd";
  config.idd_options.replication.listen_tcp_port = 7100;
  config.demux_options.store_dir = dir.path() + "/demux";
  config.demux_options.replication.listen_tcp_port = 7101;
  OkwsWorld world(config);
  world.PumpUntilReady();

  FollowerWorld idd_follower(0x1111, 7200,
                             StoreOptions{dir.path() + "/idd-replica", 4, 1024, 4});
  FollowerWorld demux_follower(0x2222, 7201,
                               StoreOptions{dir.path() + "/demux-replica", 4, 1024, 4});
  ReplicationLink idd_link(&world.net(), 7100, &idd_follower.net(), 7200);
  ReplicationLink demux_link(&world.net(), 7101, &demux_follower.net(), 7201);

  // Real logins: idd persists identity bindings, demux persists sessions.
  HttpLoadClient client(&world.net(), 80, 4);
  client.Enqueue(OkwsWorld::MakeRequest("/echo", "alice", "pw-a"), 1);
  client.Enqueue(OkwsWorld::MakeRequest("/echo", "bob", "pw-b"), 2);
  for (int i = 0; i < 4000 && !client.idle(); ++i) {
    client.Step();
    idd_link.Step();
    demux_link.Step();
    world.Pump();
    idd_follower.Pump();
    demux_follower.Pump();
  }
  ASSERT_EQ(client.results().size(), 2u);

  IddProcess* idd = nullptr;
  {
    Process* p = world.kernel().FindProcessByName("idd");
    ASSERT_NE(p, nullptr);
    idd = dynamic_cast<IddProcess*>(p->code.get());
    ASSERT_NE(idd, nullptr);
  }
  DemuxProcess* demux = nullptr;
  {
    Process* p = world.kernel().FindProcessByName("demux");
    ASSERT_NE(p, nullptr);
    demux = dynamic_cast<DemuxProcess*>(p->code.get());
    ASSERT_NE(demux, nullptr);
  }
  ASSERT_NE(idd->replication(), nullptr);
  ASSERT_NE(demux->replication(), nullptr);

  // Let the streams quiesce.
  for (int i = 0; i < 2000; ++i) {
    idd_link.Step();
    demux_link.Step();
    world.Pump();
    idd_follower.Pump();
    demux_follower.Pump();
    if (idd->replication()->source()->FullySynced() &&
        demux->replication()->source()->FullySynced()) {
      break;
    }
  }
  ASSERT_TRUE(idd->replication()->source()->FullySynced());
  ASSERT_TRUE(demux->replication()->source()->FullySynced());

  // The identity bindings — per-user taint/grant labels included — and the
  // session table now live on the follower machines, bit for bit.
  const DurableStore* idd_replica = idd_follower.follower()->replica()->store();
  ASSERT_EQ(idd_replica->size(), idd->store()->size());
  EXPECT_EQ(idd_replica->size(), 2u);  // alice and bob
  idd->store()->ForEach([&](const std::string& key, const StoreRecord& want) {
    const StoreRecord* got = idd_replica->Get(key);
    ASSERT_NE(got, nullptr) << key;
    EXPECT_EQ(got->value, want.value);
    EXPECT_EQ(got->secrecy.Entries(), want.secrecy.Entries());
    EXPECT_EQ(got->integrity.Entries(), want.integrity.Entries());
  });
  const DurableStore* demux_replica = demux_follower.follower()->replica()->store();
  ASSERT_EQ(demux_replica->size(), demux->store()->size());
  EXPECT_EQ(demux_replica->size(), 2u);  // one session per user
  demux->store()->ForEach([&](const std::string& key, const StoreRecord& want) {
    const StoreRecord* got = demux_replica->Get(key);
    ASSERT_NE(got, nullptr) << key;
    EXPECT_EQ(got->value, want.value);
  });
}

}  // namespace
}  // namespace asbestos
