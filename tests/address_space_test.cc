#include "src/kernel/address_space.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace asbestos {
namespace {

std::string ReadString(const AddressSpace& as, const PageOverlay* ov, uint64_t addr, size_t n) {
  std::string out(n, '\0');
  as.Read(ov, addr, out.data(), n);
  return out;
}

TEST(AddressSpaceTest, ZeroFillOnDemand) {
  AddressSpace as;
  const uint64_t addr = as.AllocPages(2);
  EXPECT_EQ(as.base_page_count(), 0u) << "allocation must not materialize pages";
  EXPECT_EQ(ReadString(as, nullptr, addr, 8), std::string(8, '\0'));
}

TEST(AddressSpaceTest, BaseWriteReadBack) {
  AddressSpace as;
  const uint64_t addr = as.AllocPages(1);
  as.Write(nullptr, addr + 100, "hello", 5);
  EXPECT_EQ(ReadString(as, nullptr, addr + 100, 5), "hello");
  EXPECT_EQ(as.base_page_count(), 1u);
}

TEST(AddressSpaceTest, CrossPageWrite) {
  AddressSpace as;
  const uint64_t addr = as.AllocPages(2);
  const std::string data(kPageSize + 100, 'x');
  as.Write(nullptr, addr + kPageSize - 50, data.data(), data.size());
  EXPECT_EQ(ReadString(as, nullptr, addr + kPageSize - 50, data.size()), data);
  EXPECT_EQ(as.base_page_count(), 3u);  // touches pages 0, 1, 2 of the region
}

TEST(AddressSpaceTest, OverlayCopyOnWrite) {
  AddressSpace as;
  const uint64_t addr = as.AllocPages(1);
  as.Write(nullptr, addr, "base", 4);

  PageOverlay overlay;
  const uint64_t cow = as.Write(&overlay, addr, "EP", 2);
  EXPECT_EQ(cow, 1u);
  // The overlay sees its own write plus the copied base remainder.
  EXPECT_EQ(ReadString(as, &overlay, addr, 4), "EPse");
  // The base is untouched.
  EXPECT_EQ(ReadString(as, nullptr, addr, 4), "base");
}

TEST(AddressSpaceTest, SecondOverlayWriteIsNotCow) {
  AddressSpace as;
  const uint64_t addr = as.AllocPages(1);
  PageOverlay overlay;
  EXPECT_EQ(as.Write(&overlay, addr, "a", 1), 1u);
  EXPECT_EQ(as.Write(&overlay, addr + 1, "b", 1), 0u) << "page already private";
}

TEST(AddressSpaceTest, OverlaysAreIndependent) {
  AddressSpace as;
  const uint64_t addr = as.AllocPages(1);
  PageOverlay ep1;
  PageOverlay ep2;
  as.Write(&ep1, addr, "one", 3);
  as.Write(&ep2, addr, "two", 3);
  EXPECT_EQ(ReadString(as, &ep1, addr, 3), "one");
  EXPECT_EQ(ReadString(as, &ep2, addr, 3), "two");
  EXPECT_EQ(ReadString(as, nullptr, addr, 3), std::string(3, '\0'));
}

TEST(AddressSpaceTest, OverlayReadsThroughToBase) {
  AddressSpace as;
  const uint64_t addr = as.AllocPages(2);
  as.Write(nullptr, addr, "base0", 5);
  as.Write(nullptr, addr + kPageSize, "base1", 5);
  PageOverlay overlay;
  as.Write(&overlay, addr, "EP", 2);  // private copy of page 0 only
  EXPECT_EQ(ReadString(as, &overlay, addr + kPageSize, 5), "base1");
}

TEST(AddressSpaceTest, BaseWriteAfterCowDoesNotLeakIntoOverlay) {
  AddressSpace as;
  const uint64_t addr = as.AllocPages(1);
  as.Write(nullptr, addr, "AAAA", 4);
  PageOverlay overlay;
  as.Write(&overlay, addr + 8, "ep", 2);  // copies the page with "AAAA"
  as.Write(nullptr, addr, "BBBB", 4);     // base moves on
  EXPECT_EQ(ReadString(as, &overlay, addr, 4), "AAAA");
  EXPECT_EQ(ReadString(as, nullptr, addr, 4), "BBBB");
}

TEST(AddressSpaceTest, OverlayCleanRevertsWholePages) {
  AddressSpace as;
  const uint64_t addr = as.AllocPages(3);
  as.Write(nullptr, addr, "base", 4);
  PageOverlay overlay;
  as.Write(&overlay, addr, "EPEP", 4);
  as.Write(&overlay, addr + kPageSize, "ep1", 3);
  as.Write(&overlay, addr + 2 * kPageSize, "ep2", 3);
  EXPECT_EQ(overlay.size(), 3u);

  // Clean the middle page only.
  EXPECT_EQ(OverlayClean(&overlay, addr + kPageSize, kPageSize), 1u);
  EXPECT_EQ(overlay.size(), 2u);
  EXPECT_EQ(ReadString(as, &overlay, addr + kPageSize, 3), std::string(3, '\0'));
  EXPECT_EQ(ReadString(as, &overlay, addr, 4), "EPEP");
}

TEST(AddressSpaceTest, OverlayCleanIgnoresPartialPages) {
  AddressSpace as;
  const uint64_t addr = as.AllocPages(1);
  PageOverlay overlay;
  as.Write(&overlay, addr, "x", 1);
  // Range covers only half the page: nothing reverts.
  EXPECT_EQ(OverlayClean(&overlay, addr, kPageSize / 2), 0u);
  EXPECT_EQ(overlay.size(), 1u);
}

TEST(AddressSpaceTest, LivePageAccounting) {
  const int64_t before = GetSimPageStats().live_pages;
  {
    AddressSpace as;
    const uint64_t addr = as.AllocPages(4);
    as.Write(nullptr, addr, "a", 1);
    as.Write(nullptr, addr + kPageSize, "b", 1);
    EXPECT_EQ(GetSimPageStats().live_pages, before + 2);
    PageOverlay overlay;
    as.Write(&overlay, addr, "c", 1);
    EXPECT_EQ(GetSimPageStats().live_pages, before + 3);
  }
  EXPECT_EQ(GetSimPageStats().live_pages, before);
}

TEST(AddressSpaceTest, FreePagesDropsThem) {
  AddressSpace as;
  const uint64_t addr = as.AllocPages(2);
  as.Write(nullptr, addr, "data", 4);
  as.FreePages(addr, 2);
  EXPECT_EQ(as.base_page_count(), 0u);
  EXPECT_EQ(ReadString(as, nullptr, addr, 4), std::string(4, '\0'));
}

}  // namespace
}  // namespace asbestos
