#include "src/net/simnet.h"

#include <gtest/gtest.h>

namespace asbestos {
namespace {

TEST(SimNetTest, ConnectRequiresListener) {
  SimNet net;
  EXPECT_EQ(net.ClientConnect(80), kNoConn) << "RST when nothing listens";
  net.ServerListen(80);
  EXPECT_NE(net.ClientConnect(80), kNoConn);
}

TEST(SimNetTest, ConnectEventDelivered) {
  SimNet net;
  net.ServerListen(80);
  const ConnId c = net.ClientConnect(80);
  auto events = net.DrainServerEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, SimNet::ServerEvent::Kind::kConnectRequest);
  EXPECT_EQ(events[0].conn, c);
  EXPECT_EQ(events[0].listen_port, 80);
  EXPECT_TRUE(net.DrainServerEvents().empty()) << "drain consumes events";
}

TEST(SimNetTest, EarlyClientBytesArriveAfterAccept) {
  SimNet net;
  net.ServerListen(80);
  const ConnId c = net.ClientConnect(80);
  net.ClientSend(c, "hello");  // sent before the server accepts
  net.DrainServerEvents();
  net.ServerAccept(c);
  auto events = net.DrainServerEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, SimNet::ServerEvent::Kind::kData);
  EXPECT_EQ(events[0].bytes, "hello");
}

TEST(SimNetTest, BidirectionalData) {
  SimNet net;
  net.ServerListen(80);
  const ConnId c = net.ClientConnect(80);
  net.DrainServerEvents();
  net.ServerAccept(c);
  net.ClientSend(c, "ping");
  auto events = net.DrainServerEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].bytes, "ping");
  net.ServerSend(c, "pong");
  EXPECT_EQ(net.ClientTakeReceived(c), "pong");
  EXPECT_EQ(net.ClientTakeReceived(c), "") << "take drains";
}

TEST(SimNetTest, ServerCloseVisibleAfterDataDrained) {
  SimNet net;
  net.ServerListen(80);
  const ConnId c = net.ClientConnect(80);
  net.DrainServerEvents();
  net.ServerAccept(c);
  net.ServerSend(c, "bye");
  net.ServerClose(c);
  EXPECT_FALSE(net.ClientSeesClosed(c)) << "data still pending";
  EXPECT_EQ(net.ClientTakeReceived(c), "bye");
  EXPECT_TRUE(net.ClientSeesClosed(c));
}

TEST(SimNetTest, ClientCloseEventReachesServer) {
  SimNet net;
  net.ServerListen(80);
  const ConnId c = net.ClientConnect(80);
  net.DrainServerEvents();
  net.ServerAccept(c);
  net.ClientClose(c);
  auto events = net.DrainServerEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, SimNet::ServerEvent::Kind::kClientClosed);
}

TEST(SimNetTest, SegmentAccounting) {
  EXPECT_EQ(SegmentsForBytes(0), 1u);
  EXPECT_EQ(SegmentsForBytes(1), 1u);
  EXPECT_EQ(SegmentsForBytes(kTcpMss), 1u);
  EXPECT_EQ(SegmentsForBytes(kTcpMss + 1), 2u);
  EXPECT_EQ(SegmentsForBytes(10 * kTcpMss), 10u);
}

TEST(SimNetTest, ManyConnectionsIndependent) {
  SimNet net;
  net.ServerListen(80);
  const ConnId a = net.ClientConnect(80);
  const ConnId b = net.ClientConnect(80);
  net.DrainServerEvents();
  net.ServerAccept(a);
  net.ServerAccept(b);
  net.ServerSend(a, "for-a");
  net.ServerSend(b, "for-b");
  EXPECT_EQ(net.ClientTakeReceived(a), "for-a");
  EXPECT_EQ(net.ClientTakeReceived(b), "for-b");
}

}  // namespace
}  // namespace asbestos
