// End-to-end OKWS on Asbestos: boot, request flow (paper Fig. 5 steps 1-9),
// sessions (§7.3), database services (§7.5), and the password worker.
#include <gtest/gtest.h>

#include "src/okws/demux.h"
#include "src/okws/idd.h"
#include "src/okws/okws_world.h"
#include "src/okws/services.h"
#include "src/okws/session_codec.h"
#include "src/replication/link.h"
#include "tests/test_util.h"

namespace asbestos {
namespace {

OkwsWorldConfig BasicConfig() {
  OkwsWorldConfig config;
  config.users = {{"alice", "pw-a"}, {"bob", "pw-b"}, {"carol", "pw-c"}};
  config.services.push_back(
      {"echo", [] { return std::make_unique<EchoService>(); }, false, {}});
  config.services.push_back(
      {"store", [] { return std::make_unique<StorageService>(); }, false, {}});
  config.services.push_back(
      {"notes", [] { return std::make_unique<NotesService>(); }, false, {}});
  config.services.push_back(
      {"profile", [] { return std::make_unique<ProfileService>(); }, true, {}});
  config.services.push_back(
      {"passwd", [] { return std::make_unique<PasswdService>(); }, false, {}});
  config.extra_tables = {NotesService::kTableSql, ProfileService::kTableSql};
  return config;
}

class OkwsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = std::make_unique<OkwsWorld>(BasicConfig());
    world_->PumpUntilReady();
  }

  HttpLoadClient::Result Fetch(const std::string& target, const std::string& user,
                               const std::string& pass) {
    HttpLoadClient client(&world_->net(), 80, 4);
    client.Enqueue(OkwsWorld::MakeRequest(target, user, pass), 0);
    world_->RunClient(&client);
    EXPECT_EQ(client.results().size(), 1u) << target << " produced no response";
    return client.results().empty() ? HttpLoadClient::Result{} : client.results()[0];
  }

  std::unique_ptr<OkwsWorld> world_;
};

TEST_F(OkwsTest, BootsAllProcesses) {
  EXPECT_TRUE(world_->launcher()->ready());
  EXPECT_NE(world_->kernel().FindProcessByName("netd"), nullptr);
  EXPECT_NE(world_->kernel().FindProcessByName("demux"), nullptr);
  EXPECT_NE(world_->kernel().FindProcessByName("idd"), nullptr);
  EXPECT_NE(world_->kernel().FindProcessByName("dbproxy"), nullptr);
  EXPECT_NE(world_->kernel().FindProcessByName("worker-echo"), nullptr);
}

TEST_F(OkwsTest, EchoRequest) {
  const auto r = Fetch("/echo", "alice", "pw-a");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, std::string(11, 'x'));
}

TEST_F(OkwsTest, EchoSizeParameter) {
  const auto r = Fetch("/echo?n=100", "alice", "pw-a");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body.size(), 100u);
}

TEST_F(OkwsTest, WrongPasswordRejected) {
  const auto r = Fetch("/echo", "alice", "wrong");
  EXPECT_EQ(r.status, 403);
}

TEST_F(OkwsTest, UnknownUserRejected) {
  const auto r = Fetch("/echo", "nobody", "pw");
  EXPECT_EQ(r.status, 403);
}

TEST_F(OkwsTest, UnknownServiceIs404) {
  const auto r = Fetch("/missing", "alice", "pw-a");
  EXPECT_EQ(r.status, 404);
}

TEST_F(OkwsTest, MissingCredentialsIs401) {
  HttpLoadClient client(&world_->net(), 80, 1);
  client.Enqueue("GET /echo HTTP/1.0\r\n\r\n", 0);
  world_->RunClient(&client);
  ASSERT_EQ(client.results().size(), 1u);
  EXPECT_EQ(client.results()[0].status, 401);
}

TEST_F(OkwsTest, SessionStateSurvivesAcrossConnections) {
  // The paper's toy workload: store on one connection, read on the next.
  auto r1 = Fetch("/store?d=remember-me", "alice", "pw-a");
  EXPECT_EQ(r1.status, 200);
  EXPECT_EQ(r1.body, std::string(StorageService::kResponseSize, '.'))
      << "first request returns the (empty) previous state, padded to ~1K";

  auto r2 = Fetch("/store", "alice", "pw-a");
  EXPECT_EQ(r2.status, 200);
  EXPECT_EQ(r2.body.substr(0, 11), "remember-me");
  EXPECT_EQ(r2.body.size(), StorageService::kResponseSize);
}

TEST_F(OkwsTest, SessionReusesEventProcessAndSkipsIdd) {
  (void)Fetch("/store?d=x", "alice", "pw-a");
  const uint64_t eps_after_first = world_->kernel().stats().eps_created;
  (void)Fetch("/store", "alice", "pw-a");
  (void)Fetch("/store", "alice", "pw-a");
  EXPECT_EQ(world_->kernel().stats().eps_created, eps_after_first)
      << "follow-up connections resume the existing event process (§7.3)";
}

TEST_F(OkwsTest, DistinctUsersGetDistinctEventProcesses) {
  const uint64_t eps_before = world_->kernel().stats().eps_created;
  (void)Fetch("/store?d=a", "alice", "pw-a");
  (void)Fetch("/store?d=b", "bob", "pw-b");
  EXPECT_EQ(world_->kernel().stats().eps_created - eps_before, 2u);

  // And their session state never mixes.
  auto ra = Fetch("/store", "alice", "pw-a");
  auto rb = Fetch("/store", "bob", "pw-b");
  EXPECT_EQ(ra.body.substr(0, 1), "a");
  EXPECT_EQ(rb.body.substr(0, 1), "b");
}

TEST_F(OkwsTest, SameUserDifferentServicesAreSeparateSessions) {
  const uint64_t eps_before = world_->kernel().stats().eps_created;
  (void)Fetch("/store?d=x", "alice", "pw-a");
  (void)Fetch("/echo", "alice", "pw-a");
  EXPECT_EQ(world_->kernel().stats().eps_created - eps_before, 2u);
}

TEST_F(OkwsTest, NotesPersistInDatabase) {
  auto add = Fetch("/notes?op=add&text=buy+milk", "alice", "pw-a");
  EXPECT_EQ(add.status, 200);
  auto add2 = Fetch("/notes?op=add&text=walk+dog", "alice", "pw-a");
  EXPECT_EQ(add2.status, 200);
  auto list = Fetch("/notes?op=list", "alice", "pw-a");
  EXPECT_EQ(list.status, 200);
  EXPECT_EQ(list.body, "buy milk\nwalk dog\n");
}

TEST_F(OkwsTest, PasswordChangeThroughIdd) {
  auto change = Fetch("/passwd?old=pw-a&new=pw-a2", "alice", "pw-a");
  EXPECT_EQ(change.status, 200);
  // Old password no longer works; new one does.
  EXPECT_EQ(Fetch("/echo", "alice", "pw-a").status, 403);
  EXPECT_EQ(Fetch("/echo", "alice", "pw-a2").status, 200);
}

TEST_F(OkwsTest, PasswordChangeInvalidatesCachedSessions) {
  // A cached session keyed on the old password must die with it: idd tells
  // demux to drop the user's sessions (kSessionInvalidate).
  EXPECT_EQ(Fetch("/echo", "alice", "pw-a").status, 200);  // opens a session
  EXPECT_EQ(Fetch("/passwd?old=pw-a&new=pw-x", "alice", "pw-a").status, 200);
  EXPECT_EQ(Fetch("/echo", "alice", "pw-a").status, 403)
      << "the cached echo session must not resurrect the old password";
  EXPECT_EQ(Fetch("/echo", "alice", "pw-x").status, 200);
}

TEST_F(OkwsTest, PasswordChangeWithWrongOldPasswordFails) {
  auto change = Fetch("/passwd?old=nope&new=hacked", "alice", "pw-a");
  EXPECT_EQ(change.status, 403);
  EXPECT_EQ(Fetch("/echo", "alice", "pw-a").status, 200) << "password unchanged";
}

TEST_F(OkwsTest, ManyConcurrentUsers) {
  HttpLoadClient client(&world_->net(), 80, 8);
  for (int i = 0; i < 3; ++i) {
    client.Enqueue(OkwsWorld::MakeRequest("/echo", "alice", "pw-a"), 1);
    client.Enqueue(OkwsWorld::MakeRequest("/echo", "bob", "pw-b"), 2);
    client.Enqueue(OkwsWorld::MakeRequest("/echo", "carol", "pw-c"), 3);
  }
  world_->RunClient(&client);
  ASSERT_EQ(client.results().size(), 9u);
  for (const auto& r : client.results()) {
    EXPECT_EQ(r.status, 200);
  }
  EXPECT_EQ(client.failures(), 0u);
}

TEST_F(OkwsTest, SqlInjectionThroughServiceParametersIsHarmless) {
  // Hostile note text full of SQL metacharacters must be stored verbatim,
  // not executed — and must not corrupt other rows.
  const std::string evil = "x'); DELETE FROM notes; --";
  auto add = Fetch("/notes?op=add&text=" + std::string("x%27%29%3B+DELETE+FROM+notes%3B+--"),
                   "alice", "pw-a");
  EXPECT_EQ(add.status, 200);
  auto list = Fetch("/notes?op=list", "alice", "pw-a");
  EXPECT_EQ(list.status, 200);
  EXPECT_EQ(list.body, evil + "\n") << "metacharacters stored as data";

  // The injection-looking text did not nuke anything: add another and list.
  EXPECT_EQ(Fetch("/notes?op=add&text=second", "alice", "pw-a").status, 200);
  auto list2 = Fetch("/notes?op=list", "alice", "pw-a");
  EXPECT_EQ(list2.body, evil + "\nsecond\n");
}

TEST_F(OkwsTest, LargeResponsesSpanMultipleSegments) {
  // Bigger than the TCP MSS and the worker's per-page buffers.
  const auto r = Fetch("/echo?n=20000", "alice", "pw-a");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body.size(), 20000u);
  EXPECT_EQ(r.body.find_first_not_of('x'), std::string::npos);
}

TEST_F(OkwsTest, DeclassifierReadsOwnProfileByDefault) {
  EXPECT_EQ(Fetch("/profile?op=set&text=me", "alice", "pw-a").status, 200);
  auto r = Fetch("/profile?op=get", "alice", "pw-a");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "me");
  EXPECT_EQ(Fetch("/profile?op=get&who=nobody", "alice", "pw-a").status, 404);
}

// --- Durable identity cache (src/store): uT/uG bindings survive reboot -----

IddProcess* FindIdd(OkwsWorld& world) {
  Process* p = world.kernel().FindProcessByName("idd");
  return p == nullptr ? nullptr : dynamic_cast<IddProcess*>(p->code.get());
}

HttpLoadClient::Result FetchFrom(OkwsWorld& world, const std::string& target,
                                 const std::string& user, const std::string& pass) {
  HttpLoadClient client(&world.net(), 80, 4);
  client.Enqueue(OkwsWorld::MakeRequest(target, user, pass), 0);
  world.RunClient(&client);
  EXPECT_EQ(client.results().size(), 1u) << target << " produced no response";
  return client.results().empty() ? HttpLoadClient::Result{} : client.results()[0];
}

TEST(OkwsPersistenceTest, IddIdentityCacheSurvivesReboot) {
  asbestos::testing::TempDir dir;
  OkwsWorldConfig config = BasicConfig();
  config.idd_options.store_dir = dir.path() + "/idd";

  uint64_t taint1 = 0;
  uint64_t grant1 = 0;
  int64_t uid1 = 0;

  {  // --- boot 1: first-time login mints and persists uT/uG ----------------
    OkwsWorld world(config);
    world.PumpUntilReady();
    EXPECT_EQ(FetchFrom(world, "/echo", "alice", "pw-a").status, 200);
    IddProcess* idd = FindIdd(world);
    ASSERT_NE(idd, nullptr);
    ASSERT_EQ(idd->cached_identities(), 1u);
    Handle t;
    Handle g;
    ASSERT_TRUE(idd->LookupCachedIdentity("alice", &t, &g, &uid1));
    taint1 = t.value();
    grant1 = g.value();
    // The binding's append was handed to the pipelined group commit by the
    // end-of-pump OnIdle: no shard is left outside the pipeline once the
    // world is idle. (Durability completes in the background; boot 2 below
    // is the real durability check — the store destructor drains.)
    EXPECT_EQ(idd->store()->shard_count(), 4u);
    EXPECT_EQ(idd->store()->dirty_shard_count(), 0u)
        << "idd's OnIdle must hand the login's shard to the group commit";
  }

  {  // --- boot 2: same boot key, same store — the binding is already there --
    OkwsWorld world(config);
    world.PumpUntilReady();
    IddProcess* idd = FindIdd(world);
    ASSERT_NE(idd, nullptr);
    EXPECT_EQ(idd->cached_identities(), 1u) << "cache must recover before any login";

    Handle t;
    Handle g;
    int64_t uid = 0;
    ASSERT_TRUE(idd->LookupCachedIdentity("alice", &t, &g, &uid));
    EXPECT_EQ(t.value(), taint1) << "uT must be boot-stable";
    EXPECT_EQ(g.value(), grant1) << "uG must be boot-stable";
    EXPECT_EQ(uid, uid1);

    // Logins keep working — served from the recovered cache, including the
    // password check, and the whole taint plumbing (grants to demux,
    // re-bound dbproxy) functions for the recovered handles.
    EXPECT_EQ(FetchFrom(world, "/echo", "alice", "pw-a").status, 200);
    EXPECT_EQ(FetchFrom(world, "/echo", "alice", "wrong").status, 403);
    EXPECT_EQ(idd->cached_identities(), 1u) << "no re-mint for a recovered user";

    // User-private state still works under the recovered compartments.
    EXPECT_EQ(FetchFrom(world, "/notes?op=add&text=persisted", "alice", "pw-a").status, 200);
    EXPECT_EQ(FetchFrom(world, "/notes?op=list", "alice", "pw-a").body, "persisted\n");

    // A different user logging in this boot must get fresh, non-colliding
    // handles (the generator skipped the recovered values).
    EXPECT_EQ(FetchFrom(world, "/echo", "bob", "pw-b").status, 200);
    Handle bt;
    Handle bg;
    int64_t buid = 0;
    ASSERT_TRUE(idd->LookupCachedIdentity("bob", &bt, &bg, &buid));
    EXPECT_NE(bt.value(), taint1);
    EXPECT_NE(bg.value(), grant1);
    EXPECT_NE(bt.value(), bg.value());
  }

  {  // --- boot 3: bob's binding persisted too -------------------------------
    OkwsWorld world(config);
    world.PumpUntilReady();
    IddProcess* idd = FindIdd(world);
    ASSERT_NE(idd, nullptr);
    EXPECT_EQ(idd->cached_identities(), 2u);
    EXPECT_EQ(FetchFrom(world, "/echo", "bob", "pw-b").status, 200);
  }
}

// --- Durable dbproxy: worker tables and user rows survive reboots -----------

TEST(OkwsPersistenceTest, DbproxyTablesSurviveRebootWithoutReseedingDuplicates) {
  asbestos::testing::TempDir dir;
  OkwsWorldConfig config = BasicConfig();
  config.idd_options.store_dir = dir.path() + "/idd";
  config.dbproxy_options.store_dir = dir.path() + "/dbproxy";

  {  // --- boot 1: alice writes a note through the full OKWS stack ----------
    OkwsWorld world(config);
    world.PumpUntilReady();
    EXPECT_EQ(FetchFrom(world, "/notes?op=add&text=rebooted-note", "alice", "pw-a").status,
              200);
    EXPECT_EQ(FetchFrom(world, "/notes?op=list", "alice", "pw-a").body, "rebooted-note\n");
  }

  {  // --- boot 2: the note, its hidden owner stamp, and the password table
     //     all recovered; idd's seeding probe must NOT duplicate user rows.
    OkwsWorld world(config);
    world.PumpUntilReady();
    EXPECT_EQ(FetchFrom(world, "/notes?op=list", "alice", "pw-a").body, "rebooted-note\n");
    // Bob's first-time login scans the recovered (not re-seeded) table.
    EXPECT_EQ(FetchFrom(world, "/notes?op=list", "bob", "pw-b").status, 200);
    // The kernel still filters by owner: bob sees no notes.
    EXPECT_EQ(FetchFrom(world, "/notes?op=list", "bob", "pw-b").body, "");

    Process* p = world.kernel().FindProcessByName("dbproxy");
    ASSERT_NE(p, nullptr);
    auto* proxy = dynamic_cast<DbproxyProcess*>(p->code.get());
    ASSERT_NE(proxy, nullptr);
    const SqlDatabase& db = proxy->database();
    auto* users = const_cast<SqlDatabase&>(db).FindTable("OKWS_USERS");
    ASSERT_NE(users, nullptr);
    EXPECT_EQ(users->row_count(), 3u) << "re-seeding must not duplicate users";
    auto* notes = const_cast<SqlDatabase&>(db).FindTable("NOTES");
    ASSERT_NE(notes, nullptr);
    EXPECT_EQ(notes->row_count(), 1u);
    EXPECT_GE(proxy->recovered_bindings(), 1u);  // alice's labels came back
  }
}

TEST(OkwsPersistenceTest, EmptyRecoveredPasswordTableIsReseeded) {
  // The crash window seeding must survive: a previous boot's group commit
  // flushed the okws_users SCHEMA record but died before the user rows'
  // first batch. On reboot the CREATE answers kAlreadyExists; trusting that
  // alone would skip the inserts forever and lock every user out. idd's
  // row probe must notice the table is empty and reseed it.
  asbestos::testing::TempDir dir;
  OkwsWorldConfig config = BasicConfig();
  config.dbproxy_options.store_dir = dir.path() + "/dbproxy";
  {
    // Stage the torn boot directly in the store: the schema record alone,
    // in dbproxy's persisted format (key "schema/<ordinal>" → original SQL).
    StoreOptions sopts;
    sopts.dir = config.dbproxy_options.store_dir;
    sopts.shards = config.dbproxy_options.shards;
    auto store = DurableStore::Open(sopts);
    ASSERT_TRUE(store.ok());
    ASSERT_EQ(store.value()->Put(
                  "schema/000000",
                  "CREATE TABLE okws_users (username TEXT, password TEXT, userid INTEGER)",
                  Label::Bottom(), Label::Top()),
              Status::kOk);
    ASSERT_EQ(store.value()->Sync(), Status::kOk);
  }
  OkwsWorld world(config);
  world.PumpUntilReady();
  EXPECT_EQ(FetchFrom(world, "/echo", "alice", "pw-a").status, 200)
      << "login must work after reseeding the empty recovered table";
}

// --- Durable demux sessions: a reboot is invisible to logged-in browsers ----

DemuxProcess* FindDemux(OkwsWorld& world) {
  Process* p = world.kernel().FindProcessByName("demux");
  return p == nullptr ? nullptr : dynamic_cast<DemuxProcess*>(p->code.get());
}

TEST(OkwsPersistenceTest, DemuxSessionsSurviveReboot) {
  asbestos::testing::TempDir dir;
  OkwsWorldConfig config = BasicConfig();
  config.idd_options.store_dir = dir.path() + "/idd";
  config.demux_options.store_dir = dir.path() + "/demux";

  {  // --- boot 1: a login opens a session; the session table persists ------
    OkwsWorld world(config);
    world.PumpUntilReady();
    EXPECT_EQ(FetchFrom(world, "/store?d=hello", "alice", "pw-a").status, 200);
    DemuxProcess* demux = FindDemux(world);
    ASSERT_NE(demux, nullptr);
    EXPECT_EQ(demux->session_count(), 1u);
    ASSERT_NE(demux->store(), nullptr);
    EXPECT_EQ(demux->store()->dirty_shard_count(), 0u)
        << "the registration must be handed to the group commit before idle";
  }

  {  // --- boot 2: the session is back before any traffic -------------------
    OkwsWorld world(config);
    world.PumpUntilReady();
    DemuxProcess* demux = FindDemux(world);
    ASSERT_NE(demux, nullptr);
    EXPECT_EQ(demux->session_count(), 1u) << "sessions must recover before any request";

    // The logged-in browser keeps working with its old credentials. The
    // worker's event process died with the boot, so this first connection
    // forks a fresh one (the recovered session re-registers its uW).
    const uint64_t eps_before = world.kernel().stats().eps_created;
    EXPECT_EQ(FetchFrom(world, "/store?d=again", "alice", "pw-a").status, 200);
    EXPECT_EQ(world.kernel().stats().eps_created, eps_before + 1);

    // And from then on, follow-ups resume that event process (§7.3).
    EXPECT_EQ(FetchFrom(world, "/store", "alice", "pw-a").status, 200);
    EXPECT_EQ(world.kernel().stats().eps_created, eps_before + 1);

    // Wrong credentials still fail: recovery must not weaken the check.
    EXPECT_EQ(FetchFrom(world, "/store", "alice", "wrong").status, 403);
  }
}

TEST(OkwsPersistenceTest, ExpiredSessionsDieAcrossReboot) {
  asbestos::testing::TempDir dir;
  OkwsWorldConfig config = BasicConfig();
  config.idd_options.store_dir = dir.path() + "/idd";
  config.demux_options.store_dir = dir.path() + "/demux";
  config.demux_options.session_ttl_cycles = 1;  // expires on the next tick

  {
    OkwsWorld world(config);
    world.PumpUntilReady();
    EXPECT_EQ(FetchFrom(world, "/echo", "alice", "pw-a").status, 200);
    DemuxProcess* demux = FindDemux(world);
    ASSERT_NE(demux, nullptr);
    EXPECT_EQ(demux->session_count(), 1u);
  }

  {  // The virtual clock moved past the expiry: recovery drops the session.
    OkwsWorld world(config);
    world.PumpUntilReady();
    DemuxProcess* demux = FindDemux(world);
    ASSERT_NE(demux, nullptr);
    EXPECT_EQ(demux->session_count(), 0u) << "expired sessions must not recover";
    // The user is not locked out — the next request just logs in again.
    EXPECT_EQ(FetchFrom(world, "/echo", "alice", "pw-a").status, 200);
  }
}

// --- Follower reads of the replicated session table --------------------------

TEST(OkwsFollowerReadTest, ExpiredSessionRefusedIdenticallyOnFollower) {
  asbestos::testing::TempDir dir;
  OkwsWorldConfig config = BasicConfig();
  config.idd_options.store_dir = dir.path() + "/idd";
  config.demux_options.store_dir = dir.path() + "/demux";
  // TTL sized so the session expires when the test says so, comfortably
  // inside a lease long enough that the refusal below is unambiguously the
  // session-expiry rule, not lease staleness.
  config.demux_options.session_ttl_cycles = 200'000'000;
  config.demux_options.replication.listen_tcp_port = 7101;
  config.demux_options.replication.lease_interval_cycles = 2'000'000'000;
  OkwsWorld world(config);
  world.PumpUntilReady();

  StoreOptions replica_opts;
  replica_opts.dir = dir.path() + "/demux-replica";
  replica_opts.shards = 4;
  FollowerOptions fopts;
  fopts.follower_id = 1;
  fopts.auto_promote = false;
  FollowerWorld follower(0x2222, 7201, replica_opts, fopts, /*read_tcp_port=*/7300);
  // The demux session liveness rule, applied follower-side: the SAME
  // comparison FindLiveSession uses on the primary (session_codec.h).
  follower.follower()->set_read_liveness_filter(okws_session::LivenessFilter());
  ReplicationLink link(&world.net(), 7101, &follower.net(), 7201);
  const auto step = [&] {
    link.Step();
    world.Pump();
    follower.Pump();
  };

  // A login registers (and persists) alice's session, stamping its
  // read-your-writes token from the session shard's WAL tail.
  EXPECT_EQ(FetchFrom(world, "/echo", "alice", "pw-a").status, 200);
  DemuxProcess* demux = FindDemux(world);
  ASSERT_NE(demux, nullptr);
  ASSERT_EQ(demux->session_count(), 1u);
  const replwire::ReadCursorToken token = demux->session_cursor("alice", "echo");
  ASSERT_FALSE(token.empty());

  for (int i = 0; i < 3000; ++i) {
    step();
    if (demux->replication()->hub()->session_count() == 1 &&
        demux->replication()->hub()->AllFullySynced()) {
      break;
    }
  }
  ASSERT_TRUE(demux->replication()->hub()->AllFullySynced());

  // The follower serves the live session record — honoring the token, so
  // this read observes alice's own registration.
  const std::string key = okws_session::Key("alice", "echo");
  ReadClient reader(&follower.net(), 7300, /*auth_token=*/0);
  ReadResult r;
  ASSERT_TRUE(reader.Read(key, Label::Top(), token, step, &r));
  EXPECT_EQ(r.status, ReadStatus::kOk);
  EXPECT_FALSE(r.value.empty());

  // The demux routes this session's reads somewhere (one eligible
  // follower), and its advisory choice is that follower's session.
  EXPECT_NE(demux->RouteSessionRead("alice", "echo"), nullptr);

  // Time passes the TTL. The primary never touched the record (expiry is
  // lazy), so the REPLICATED record still exists on the follower — and the
  // follower must refuse it by the same rule the primary would.
  GetCycleAccounting().Charge(Component::kOther, 250'000'000);
  ASSERT_TRUE(reader.Read(key, Label::Top(), token, step, &r));
  EXPECT_EQ(r.status, ReadStatus::kRefusedExpired);
  EXPECT_TRUE(r.value.empty());

  // The primary agrees: the next request re-logs-in (the expired session is
  // lazily erased and a fresh one registered, with a NEW, later token).
  EXPECT_EQ(FetchFrom(world, "/echo", "alice", "pw-a").status, 200);
  ASSERT_EQ(demux->session_count(), 1u);
  const replwire::ReadCursorToken token2 = demux->session_cursor("alice", "echo");
  ASSERT_FALSE(token2.empty());
  EXPECT_TRUE(token2.generation > token.generation ||
              (token2.generation == token.generation && token2.offset > token.offset));

  // Once the erase+re-registration ships, the follower serves the fresh
  // session again — read-your-writes across the whole cycle.
  for (int i = 0; i < 3000; ++i) {
    step();
    if (demux->replication()->hub()->AllFullySynced()) {
      break;
    }
  }
  ASSERT_TRUE(reader.Read(key, Label::Top(), token2, step, &r));
  EXPECT_EQ(r.status, ReadStatus::kOk);
}

TEST_F(OkwsTest, PipelineDeliversExactlyOneIddLoginPerUser) {
  auto* idd = world_->kernel().FindProcessByName("idd");
  ASSERT_NE(idd, nullptr);
  (void)Fetch("/echo", "alice", "pw-a");
  (void)Fetch("/echo", "alice", "pw-a");
  (void)Fetch("/store?d=1", "alice", "pw-a");  // second service, same user
  (void)Fetch("/echo", "bob", "pw-b");
  // idd caches identities; only two users ever logged in.
  auto* idd_code = dynamic_cast<IddProcess*>(idd->code.get());
  ASSERT_NE(idd_code, nullptr);
  EXPECT_EQ(idd_code->cached_identities(), 2u);
}

}  // namespace
}  // namespace asbestos
