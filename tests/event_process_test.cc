// Event processes (paper Section 6): per-user isolated contexts inside one
// process — label isolation, COW memory isolation, ep_clean / ep_exit, and
// memory accounting.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/labels/label.h"
#include "tests/test_util.h"

namespace asbestos {
namespace {

using testing::ScriptedProcess;

// A worker-shaped process: enters the event realm at startup and runs the
// supplied handler per event process.
class RealmProcess : public ProcessCode {
 public:
  using Handler = std::function<void(ProcessContext&, const Message&)>;

  RealmProcess(Handle* service_port_out, Handler handler)
      : service_port_out_(service_port_out), handler_(std::move(handler)) {}

  void Start(ProcessContext& ctx) override {
    *service_port_out_ = ctx.NewPort(Label::Top());
    ASB_ASSERT(ctx.SetPortLabel(*service_port_out_, Label::Top()) == Status::kOk);
    ctx.EnterEventRealm();
  }

  void HandleMessage(ProcessContext& ctx, const Message& msg) override { handler_(ctx, msg); }

 private:
  Handle* service_port_out_;
  Handler handler_;
};

class EventProcessTest : public ::testing::Test {
 protected:
  Kernel kernel_{0xabcdULL};

  ProcessId MakeSender(const std::string& name = "sender") {
    SpawnArgs args;
    args.name = name;
    return kernel_.CreateProcess(std::make_unique<ScriptedProcess>(), args);
  }

  void SendTo(ProcessId sender, Handle port, Message msg = Message(),
              const SendArgs& args = SendArgs()) {
    kernel_.WithProcessContext(sender, [&](ProcessContext& ctx) {
      EXPECT_EQ(ctx.Send(port, std::move(msg), args), Status::kOk);
    });
  }
};

TEST_F(EventProcessTest, EachBasePortMessageForksFreshEp) {
  Handle service;
  std::vector<EpId> eps;
  std::vector<bool> fresh;
  SpawnArgs args;
  args.name = "worker";
  kernel_.CreateProcess(std::make_unique<RealmProcess>(&service,
                                                       [&](ProcessContext& ctx, const Message&) {
                                                         eps.push_back(ctx.ep_id());
                                                         fresh.push_back(ctx.in_new_ep());
                                                       }),
                        args);
  const ProcessId sender = MakeSender();
  SendTo(sender, service);
  SendTo(sender, service);
  SendTo(sender, service);
  kernel_.RunUntilIdle();

  ASSERT_EQ(eps.size(), 3u);
  EXPECT_NE(eps[0], eps[1]);
  EXPECT_NE(eps[1], eps[2]);
  EXPECT_TRUE(fresh[0] && fresh[1] && fresh[2]);
  EXPECT_EQ(kernel_.stats().eps_created, 3u);
}

TEST_F(EventProcessTest, EpOwnedPortResumesSameEp) {
  Handle service;
  std::map<EpId, Handle> ep_ports;
  std::vector<std::pair<EpId, bool>> activations;  // (ep, was_new)
  SpawnArgs args;
  args.name = "worker";
  kernel_.CreateProcess(
      std::make_unique<RealmProcess>(&service,
                                     [&](ProcessContext& ctx, const Message& msg) {
                                       activations.emplace_back(ctx.ep_id(), ctx.in_new_ep());
                                       if (ctx.in_new_ep()) {
                                         Handle mine = ctx.NewPort(Label::Top());
                                         ASB_ASSERT(ctx.SetPortLabel(mine, Label::Top()) ==
                                                    Status::kOk);
                                         ep_ports[ctx.ep_id()] = mine;
                                       }
                                       (void)msg;
                                     }),
      args);
  const ProcessId sender = MakeSender();
  SendTo(sender, service);  // creates EP 1 and its private port
  kernel_.RunUntilIdle();
  ASSERT_EQ(activations.size(), 1u);
  const EpId first = activations[0].first;

  SendTo(sender, ep_ports[first]);  // resumes the same EP
  kernel_.RunUntilIdle();
  ASSERT_EQ(activations.size(), 2u);
  EXPECT_EQ(activations[1].first, first);
  EXPECT_FALSE(activations[1].second) << "resumption is not a fresh event process";
  EXPECT_EQ(kernel_.stats().eps_created, 1u);
}

TEST_F(EventProcessTest, LabelsAreIsolatedPerEp) {
  // Contaminating one event process must not taint its siblings or the base.
  Handle service;
  Handle taint;
  std::vector<EpId> eps;
  SpawnArgs args;
  args.name = "worker";
  const ProcessId worker = kernel_.CreateProcess(
      std::make_unique<RealmProcess>(
          &service, [&](ProcessContext& ctx, const Message&) { eps.push_back(ctx.ep_id()); }),
      args);

  const ProcessId sender = MakeSender();
  kernel_.WithProcessContext(sender, [&](ProcessContext& ctx) { taint = ctx.NewHandle(); });

  SendArgs tainted;
  tainted.contaminate = Label({{taint, Level::kL2}}, Level::kStar);
  SendTo(sender, service, Message(), tainted);
  SendTo(sender, service);  // untainted sibling
  kernel_.RunUntilIdle();

  ASSERT_EQ(eps.size(), 2u);
  EXPECT_EQ(kernel_.SendLabelOf(worker, eps[0]).Get(taint), Level::kL2);
  EXPECT_EQ(kernel_.SendLabelOf(worker, eps[1]).Get(taint), Level::kL1);
  EXPECT_EQ(kernel_.SendLabelOf(worker).Get(taint), Level::kL1) << "base is untouched";
}

TEST_F(EventProcessTest, MemoryIsIsolatedPerEpViaCow) {
  Handle service;
  uint64_t state_addr = 0;
  std::vector<std::string> observed;
  SpawnArgs args;
  args.name = "worker";

  // The worker writes its message's data to a fixed address and reports what
  // it read there beforehand — EPs must never see each other's writes.
  auto code = std::make_unique<ScriptedProcess>(
      [&](ProcessContext& ctx) {
        state_addr = ctx.AllocPages(1);
        Handle port = ctx.NewPort(Label::Top());
        ASB_ASSERT(ctx.SetPortLabel(port, Label::Top()) == Status::kOk);
        service = port;
        ctx.EnterEventRealm();
      },
      [&](ProcessContext& ctx, const Message& msg) {
        char buf[16] = {};
        ctx.ReadMem(state_addr, buf, sizeof(buf) - 1);
        observed.emplace_back(buf);
        ctx.WriteMem(state_addr, msg.data.data(), msg.data.size() + 1);
      });
  kernel_.CreateProcess(std::move(code), args);

  const ProcessId sender = MakeSender();
  Message m1;
  m1.data = "alpha";
  Message m2;
  m2.data = "beta";
  SendTo(sender, service, std::move(m1));
  SendTo(sender, service, std::move(m2));
  kernel_.RunUntilIdle();

  ASSERT_EQ(observed.size(), 2u);
  EXPECT_EQ(observed[0], "") << "fresh EP reads base zeros (the newness idiom)";
  EXPECT_EQ(observed[1], "") << "second EP must not see the first EP's write";
  EXPECT_EQ(kernel_.stats().cow_pages_copied, 2u);
}

TEST_F(EventProcessTest, BaseMemoryVisibleToAllEps) {
  Handle service;
  uint64_t globals = 0;
  std::vector<std::string> observed;
  SpawnArgs args;
  args.name = "worker";
  auto code = std::make_unique<ScriptedProcess>(
      [&](ProcessContext& ctx) {
        globals = ctx.AllocPages(1);
        ctx.WriteMem(globals, "config", 7);  // base write before entering the realm
        service = ctx.NewPort(Label::Top());
        ASB_ASSERT(ctx.SetPortLabel(service, Label::Top()) == Status::kOk);
        ctx.EnterEventRealm();
      },
      [&](ProcessContext& ctx, const Message&) {
        char buf[8] = {};
        ctx.ReadMem(globals, buf, 7);
        observed.emplace_back(buf);
      });
  kernel_.CreateProcess(std::move(code), args);
  const ProcessId sender = MakeSender();
  SendTo(sender, service);
  SendTo(sender, service);
  kernel_.RunUntilIdle();
  ASSERT_EQ(observed.size(), 2u);
  EXPECT_EQ(observed[0], "config");
  EXPECT_EQ(observed[1], "config");
}

TEST_F(EventProcessTest, EpCleanRevertsScratchKeepsState) {
  Handle service;
  uint64_t state_addr = 0;
  uint64_t scratch_addr = 0;
  std::vector<std::pair<std::string, std::string>> observed;  // (state, scratch)
  SpawnArgs args;
  args.name = "worker";
  std::map<EpId, Handle> ep_ports;
  auto code = std::make_unique<ScriptedProcess>(
      [&](ProcessContext& ctx) {
        state_addr = ctx.AllocPages(1);
        scratch_addr = ctx.AllocPages(4);
        service = ctx.NewPort(Label::Top());
        ASB_ASSERT(ctx.SetPortLabel(service, Label::Top()) == Status::kOk);
        ctx.EnterEventRealm();
      },
      [&](ProcessContext& ctx, const Message&) {
        char state[8] = {};
        char scratch[8] = {};
        ctx.ReadMem(state_addr, state, 7);
        ctx.ReadMem(scratch_addr, scratch, 7);
        observed.emplace_back(state, scratch);
        ctx.WriteMem(state_addr, "session", 8);
        ctx.WriteMem(scratch_addr, "tempbuf", 8);
        if (ctx.in_new_ep()) {
          Handle mine = ctx.NewPort(Label::Top());
          ASB_ASSERT(ctx.SetPortLabel(mine, Label::Top()) == Status::kOk);
          ep_ports[ctx.ep_id()] = mine;
        }
        // Paper §7.3: discard pages that do not hold session data.
        ASB_ASSERT(ctx.EpClean(scratch_addr, 4 * kPageSize) == Status::kOk);
      });
  kernel_.CreateProcess(std::move(code), args);

  const ProcessId sender = MakeSender();
  SendTo(sender, service);
  kernel_.RunUntilIdle();
  ASSERT_EQ(ep_ports.size(), 1u);
  SendTo(sender, ep_ports.begin()->second);  // resume the same EP
  kernel_.RunUntilIdle();

  ASSERT_EQ(observed.size(), 2u);
  EXPECT_EQ(observed[1].first, "session") << "state page persists across yields";
  EXPECT_EQ(observed[1].second, "") << "scratch was reverted by ep_clean";
}

TEST_F(EventProcessTest, EpExitFreesEverything) {
  Handle service;
  std::map<EpId, Handle> ep_ports;
  SpawnArgs args;
  args.name = "worker";
  kernel_.CreateProcess(
      std::make_unique<RealmProcess>(&service,
                                     [&](ProcessContext& ctx, const Message& msg) {
                                       if (msg.type == 1) {
                                         ctx.EpExit();
                                         return;
                                       }
                                       Handle mine = ctx.NewPort(Label::Top());
                                       ASB_ASSERT(ctx.SetPortLabel(mine, Label::Top()) ==
                                                  Status::kOk);
                                       ep_ports[ctx.ep_id()] = mine;
                                       ctx.WriteMem(ctx.AllocPages(1), "x", 1);
                                     }),
      args);
  const ProcessId sender = MakeSender();
  SendTo(sender, service);
  kernel_.RunUntilIdle();
  ASSERT_EQ(ep_ports.size(), 1u);
  const Handle ep_port = ep_ports.begin()->second;
  EXPECT_TRUE(kernel_.PortAlive(ep_port));

  Message die;
  die.type = 1;
  SendTo(sender, ep_ports.begin()->second, std::move(die));
  kernel_.RunUntilIdle();
  EXPECT_EQ(kernel_.stats().eps_destroyed, 1u);
  EXPECT_FALSE(kernel_.PortAlive(ep_port)) << "the dead EP's ports are dissociated";

  // Messages to the dead EP's port vanish silently.
  SendTo(sender, ep_port);
  EXPECT_GE(kernel_.stats().drops_no_port, 1u);
}

TEST_F(EventProcessTest, NewnessDetectedViaZeroedMemory) {
  // The paper's idiom: the base process leaves a flag at zero; each fresh EP
  // inherits the zero, a resumed EP sees its own earlier non-zero write.
  Handle service;
  uint64_t flag_addr = 0;
  std::vector<uint8_t> flags_seen;
  std::map<EpId, Handle> ep_ports;
  SpawnArgs args;
  args.name = "worker";
  auto code = std::make_unique<ScriptedProcess>(
      [&](ProcessContext& ctx) {
        flag_addr = ctx.AllocPages(1);
        service = ctx.NewPort(Label::Top());
        ASB_ASSERT(ctx.SetPortLabel(service, Label::Top()) == Status::kOk);
        ctx.EnterEventRealm();
      },
      [&](ProcessContext& ctx, const Message&) {
        uint8_t flag = 0;
        ctx.ReadMem(flag_addr, &flag, 1);
        flags_seen.push_back(flag);
        if (flag == 0) {
          const uint8_t one = 1;
          ctx.WriteMem(flag_addr, &one, 1);
          Handle mine = ctx.NewPort(Label::Top());
          ASB_ASSERT(ctx.SetPortLabel(mine, Label::Top()) == Status::kOk);
          ep_ports[ctx.ep_id()] = mine;
        }
      });
  kernel_.CreateProcess(std::move(code), args);
  const ProcessId sender = MakeSender();
  SendTo(sender, service);
  kernel_.RunUntilIdle();
  SendTo(sender, ep_ports.begin()->second);
  SendTo(sender, service);
  kernel_.RunUntilIdle();

  ASSERT_EQ(flags_seen.size(), 3u);
  EXPECT_EQ(flags_seen[0], 0) << "first EP is new";
  EXPECT_EQ(flags_seen[1], 1) << "resumed EP sees its own write";
  EXPECT_EQ(flags_seen[2], 0) << "second EP inherits the base zero";
}

TEST_F(EventProcessTest, EpKernelStateIsSmall) {
  // §6.1: event-process kernel state is 44 bytes vs. 320 for a process.
  Handle service;
  SpawnArgs args;
  args.name = "worker";
  kernel_.CreateProcess(
      std::make_unique<RealmProcess>(&service, [](ProcessContext&, const Message&) {}), args);
  const ProcessId sender = MakeSender();

  const uint64_t before = kernel_.MemReport().ep_bytes;
  for (int i = 0; i < 10; ++i) {
    SendTo(sender, service);
  }
  kernel_.RunUntilIdle();
  const uint64_t after = kernel_.MemReport().ep_bytes;
  EXPECT_EQ(after - before, 10 * kEpKernelBytes);
  EXPECT_EQ(kEpKernelBytes, 44u);
  EXPECT_EQ(kProcessKernelBytes, 320u);
  EXPECT_EQ(kVnodeBytes, 64u);
}

TEST_F(EventProcessTest, ProcessExitFromEpKillsWholeProcess) {
  // §6.1: execution states are not isolated; an EP may exit the whole
  // process via the process-wide exit call.
  Handle service;
  SpawnArgs args;
  args.name = "worker";
  const ProcessId worker = kernel_.CreateProcess(
      std::make_unique<RealmProcess>(&service,
                                     [](ProcessContext& ctx, const Message&) { ctx.Exit(); }),
      args);
  const ProcessId sender = MakeSender();
  SendTo(sender, service);
  kernel_.RunUntilIdle();
  EXPECT_EQ(kernel_.FindProcess(worker), nullptr);
  EXPECT_FALSE(kernel_.PortAlive(service));
}

}  // namespace
}  // namespace asbestos
