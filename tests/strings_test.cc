#include "src/base/strings.h"

#include <gtest/gtest.h>

namespace asbestos {
namespace {

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("empty"), "empty");
  // Long output forces the resize path.
  const std::string long_out = StrFormat("%0200d", 5);
  EXPECT_EQ(long_out.size(), 200u);
}

TEST(StringsTest, Split) {
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringsTest, SplitEmpty) {
  const auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x y\t\r\n"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("abc"), "abc");
}

TEST(StringsTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("Content-Length", "content-length"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("GET /path", "GET "));
  EXPECT_FALSE(StartsWith("GE", "GET "));
  EXPECT_TRUE(EndsWith("file.txt", ".txt"));
  EXPECT_FALSE(EndsWith("txt", ".txt"));
}

TEST(StringsTest, ParseUint64) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(ParseUint64("18446744073709551615", &v));
  EXPECT_EQ(v, ~0ULL);
  EXPECT_FALSE(ParseUint64("18446744073709551616", &v));  // overflow
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("12a", &v));
  EXPECT_FALSE(ParseUint64("-1", &v));
}

}  // namespace
}  // namespace asbestos
