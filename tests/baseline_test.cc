#include "src/baseline/unix_sim.h"

#include <gtest/gtest.h>

#include "src/sim/costs.h"

namespace asbestos {
namespace {

TEST(BaselineTest, ModuleFasterThanCgi) {
  ApacheConfig cgi;
  cgi.mode = ApacheMode::kCgi;
  ApacheConfig mod;
  mod.mode = ApacheMode::kModule;
  mod.pool_size = 16;
  const auto cgi_stats = UnixApacheSim(cgi).Run(2000, 400);
  const auto mod_stats = UnixApacheSim(mod).Run(2000, 16);
  const double cgi_tput = cgi_stats.throughput_per_sec(costs::kCpuHz);
  const double mod_tput = mod_stats.throughput_per_sec(costs::kCpuHz);
  EXPECT_GT(mod_tput, 2.0 * cgi_tput) << "module avoids fork/exec per request";
}

TEST(BaselineTest, ThroughputNearPaperValues) {
  // Paper Fig. 7: Apache ≈ 1,050 conn/s, Mod-Apache ≈ 2,800 conn/s.
  ApacheConfig cgi;
  cgi.mode = ApacheMode::kCgi;
  const double apache = UnixApacheSim(cgi).Run(5000, 400).throughput_per_sec(costs::kCpuHz);
  EXPECT_GT(apache, 800);
  EXPECT_LT(apache, 1400);

  ApacheConfig mod;
  mod.mode = ApacheMode::kModule;
  mod.pool_size = 16;
  const double modv = UnixApacheSim(mod).Run(5000, 16).throughput_per_sec(costs::kCpuHz);
  EXPECT_GT(modv, 2200);
  EXPECT_LT(modv, 3400);
}

TEST(BaselineTest, LatencyTailShape) {
  // Paper Fig. 8: Mod-Apache p90 ≈ p50; Apache p90 ≈ 1.5× p50.
  ApacheConfig mod;
  mod.mode = ApacheMode::kModule;
  mod.pool_size = 16;
  const auto mod_stats = UnixApacheSim(mod).Run(5000, 4);
  const double mod_ratio =
      static_cast<double>(mod_stats.latency_percentile_cycles(90)) /
      static_cast<double>(mod_stats.latency_percentile_cycles(50));
  EXPECT_LT(mod_ratio, 1.15);

  ApacheConfig cgi;
  cgi.mode = ApacheMode::kCgi;
  const auto cgi_stats = UnixApacheSim(cgi).Run(5000, 4);
  const double cgi_ratio =
      static_cast<double>(cgi_stats.latency_percentile_cycles(90)) /
      static_cast<double>(cgi_stats.latency_percentile_cycles(50));
  EXPECT_GT(cgi_ratio, 1.15);
  EXPECT_LT(cgi_ratio, 2.2);
}

TEST(BaselineTest, DeterministicAcrossRuns) {
  ApacheConfig cgi;
  cgi.mode = ApacheMode::kCgi;
  const auto a = UnixApacheSim(cgi).Run(500, 4);
  const auto b = UnixApacheSim(cgi).Run(500, 4);
  ASSERT_EQ(a.requests.size(), b.requests.size());
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.latency_percentile_cycles(50), b.latency_percentile_cycles(50));
}

TEST(BaselineTest, ClosedLoopLatencyScalesWithConcurrency) {
  ApacheConfig mod;
  mod.mode = ApacheMode::kModule;
  const auto c1 = UnixApacheSim(mod).Run(2000, 1);
  const auto c8 = UnixApacheSim(mod).Run(2000, 8);
  EXPECT_GT(c8.latency_percentile_cycles(50), 4 * c1.latency_percentile_cycles(50))
      << "queueing on one CPU stretches latency with concurrency";
}

}  // namespace
}  // namespace asbestos
