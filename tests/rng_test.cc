#include "src/base/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace asbestos {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversAllValues) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(rng.NextBelow(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    const uint64_t v = rng.NextInRange(5, 7);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RngTest, NextDoubleUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace asbestos
