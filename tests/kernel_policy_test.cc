// Policy-level behaviours built from label primitives: spawn label
// justification, the §5.2 privacy example, §5.4 integrity, MLS emulation,
// and the capability idiom of §5.5.
#include <gtest/gtest.h>

#include "src/kernel/kernel.h"
#include "src/labels/label.h"
#include "tests/test_util.h"

namespace asbestos {
namespace {

using testing::RecorderProcess;
using testing::ScriptedProcess;

class KernelPolicyTest : public ::testing::Test {
 protected:
  Kernel kernel_{0xfeedULL};
  std::vector<RecorderProcess::Received> received_;

  ProcessId MakeProcess(const std::string& name, const Label& send = Label::DefaultSend(),
                        const Label& recv = Label::DefaultReceive()) {
    SpawnArgs args;
    args.name = name;
    args.send_label = send;
    args.recv_label = recv;
    return kernel_.CreateProcess(std::make_unique<ScriptedProcess>(), args);
  }

  // Creates a recorder process with the given labels and one open port.
  std::pair<ProcessId, Handle> MakeRecorder(const std::string& name,
                                            const Label& send = Label::DefaultSend(),
                                            const Label& recv = Label::DefaultReceive(),
                                            const Label& port_label = Label::Top()) {
    SpawnArgs args;
    args.name = name;
    args.send_label = send;
    args.recv_label = recv;
    const ProcessId pid =
        kernel_.CreateProcess(std::make_unique<RecorderProcess>(&received_), args);
    Handle port;
    kernel_.WithProcessContext(pid, [&](ProcessContext& ctx) {
      port = ctx.NewPort(Label::Top());
      EXPECT_EQ(ctx.SetPortLabel(port, port_label), Status::kOk);
    });
    return {pid, port};
  }
};

// --- Spawn label justification -------------------------------------------------

TEST_F(KernelPolicyTest, SpawnCannotLowerSendLabelWithoutStar) {
  const ProcessId parent = MakeProcess("parent");
  kernel_.WithProcessContext(parent, [&](ProcessContext& ctx) {
    // Parent self-taints, then tries to launder the taint away via spawn.
    const Handle t = Handle::FromValue(0x999);
    EXPECT_EQ(ctx.SetSendLevel(t, Level::kL3), Status::kOk);
    SpawnArgs args;
    args.name = "child";
    args.send_label = Label::DefaultSend();  // lacks the taint
    auto result = ctx.Spawn(std::make_unique<ScriptedProcess>(), std::move(args));
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status(), Status::kAccessDenied);
  });
}

TEST_F(KernelPolicyTest, SpawnDistributesPrivilegeWithStar) {
  const ProcessId parent = MakeProcess("parent");
  ProcessId child = kNoProcess;
  Handle h;
  kernel_.WithProcessContext(parent, [&](ProcessContext& ctx) {
    h = ctx.NewHandle();
    SpawnArgs args;
    args.name = "child";
    args.send_label = Label({{h, Level::kStar}}, Level::kL1);  // passes ⋆ down
    auto result = ctx.Spawn(std::make_unique<ScriptedProcess>(), std::move(args));
    ASSERT_TRUE(result.ok());
    child = result.value();
  });
  EXPECT_EQ(kernel_.SendLabelOf(child).Get(h), Level::kStar);
}

TEST_F(KernelPolicyTest, SpawnCannotForgeIntegrityLevel) {
  // Level 0 on a handle the parent does not control cannot be minted.
  const ProcessId parent = MakeProcess("parent");
  kernel_.WithProcessContext(parent, [&](ProcessContext& ctx) {
    SpawnArgs args;
    args.name = "child";
    args.send_label = Label({{Handle::FromValue(0x31337), Level::kL0}}, Level::kL1);
    EXPECT_EQ(ctx.Spawn(std::make_unique<ScriptedProcess>(), std::move(args)).status(),
              Status::kAccessDenied);
  });
}

TEST_F(KernelPolicyTest, SpawnCanRestrictChildFreely) {
  // Tainting the child more, or lowering its receive label, needs no
  // privilege ("restricting their labels so that they can reveal data only
  // to processes in the compartment").
  const ProcessId parent = MakeProcess("parent");
  kernel_.WithProcessContext(parent, [&](ProcessContext& ctx) {
    SpawnArgs args;
    args.name = "child";
    args.send_label = Label({{Handle::FromValue(0x5), Level::kL3}}, Level::kL1);
    args.recv_label = Label({{Handle::FromValue(0x6), Level::kL1}}, Level::kL2);
    EXPECT_TRUE(ctx.Spawn(std::make_unique<ScriptedProcess>(), std::move(args)).ok());
  });
}

TEST_F(KernelPolicyTest, SpawnCannotRaiseChildReceiveWithoutStar) {
  const ProcessId parent = MakeProcess("parent");
  kernel_.WithProcessContext(parent, [&](ProcessContext& ctx) {
    SpawnArgs args;
    args.name = "child";
    args.recv_label = Label({{Handle::FromValue(0x7), Level::kL3}}, Level::kL2);
    EXPECT_EQ(ctx.Spawn(std::make_unique<ScriptedProcess>(), std::move(args)).status(),
              Status::kAccessDenied);
  });
}

// --- The §5.2 privacy example -----------------------------------------------

TEST_F(KernelPolicyTest, Figure2PrivacyExample) {
  // U (user u's shell, tainted uT 3) may send to u's terminal UT; V (user
  // v's shell, tainted vT 3) may not.
  Kernel& k = kernel_;
  const ProcessId fs = MakeProcess("fs");
  Handle ut;
  Handle vt;
  k.WithProcessContext(fs, [&](ProcessContext& ctx) {
    ut = ctx.NewHandle();
    vt = ctx.NewHandle();
  });

  const Label u_send({{ut, Level::kL3}}, Level::kL1);
  const Label u_recv({{ut, Level::kL3}}, Level::kL2);
  const Label v_send({{vt, Level::kL3}}, Level::kL1);

  auto [terminal, term_port] = MakeRecorder("terminal", u_send, u_recv);
  (void)terminal;
  const ProcessId u_shell = MakeProcess("U", u_send, u_recv);
  const ProcessId v_shell = MakeProcess("V", v_send, Label({{vt, Level::kL3}}, Level::kL2));

  k.WithProcessContext(u_shell, [&](ProcessContext& ctx) {
    Message m;
    m.data = "u's private data";
    EXPECT_EQ(ctx.Send(term_port, std::move(m)), Status::kOk);
  });
  k.WithProcessContext(v_shell, [&](ProcessContext& ctx) {
    Message m;
    m.data = "v's private data";
    EXPECT_EQ(ctx.Send(term_port, std::move(m)), Status::kOk);
  });
  k.RunUntilIdle();
  ASSERT_EQ(received_.size(), 1u) << "only u's message reaches u's terminal";
  EXPECT_EQ(received_[0].msg.data, "u's private data");
  EXPECT_EQ(k.stats().drops_label_check, 1u);
}

TEST_F(KernelPolicyTest, Level2TaintAllowsPeerTalkButNotTerminal) {
  // The "partial taint" variant (§5.2 "The four levels"): with taint at 2,
  // shells talk to each other, but a terminal with a lowered receive label
  // still refuses the other user's data.
  const ProcessId fs = MakeProcess("fs");
  Handle ut;
  Handle vt;
  kernel_.WithProcessContext(fs, [&](ProcessContext& ctx) {
    ut = ctx.NewHandle();
    vt = ctx.NewHandle();
  });

  const Label u_send({{ut, Level::kL2}}, Level::kL1);
  const Label v_send({{vt, Level::kL2}}, Level::kL1);
  // Terminal accepts u's taint (default 2 suffices) but excludes v: vT 1.
  const Label term_recv({{vt, Level::kL1}}, Level::kL2);

  auto [term, term_port] = MakeRecorder("terminal", u_send, term_recv);
  (void)term;
  auto [u_shell, u_port] = MakeRecorder("U", u_send, Label::DefaultReceive());
  (void)u_shell;
  const ProcessId v_shell = MakeProcess("V", v_send, Label::DefaultReceive());

  // V can reach U (both default-receive 2 accommodates taint at 2)...
  kernel_.WithProcessContext(v_shell, [&](ProcessContext& ctx) {
    EXPECT_EQ(ctx.Send(u_port, Message{}), Status::kOk);
    // ...but not the terminal, whose receive label says vT 1 < 2.
    EXPECT_EQ(ctx.Send(term_port, Message{}), Status::kOk);
  });
  kernel_.RunUntilIdle();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(kernel_.stats().drops_label_check, 1u);
}

TEST_F(KernelPolicyTest, DynamicTaintThenLockout) {
  // Continuing the previous policy: once U reads v's data, U's send label
  // rises to vT 2 and the terminal refuses U too.
  const ProcessId fs = MakeProcess("fs");
  Handle ut;
  Handle vt;
  kernel_.WithProcessContext(fs, [&](ProcessContext& ctx) {
    ut = ctx.NewHandle();
    vt = ctx.NewHandle();
  });
  const Label u_send({{ut, Level::kL2}}, Level::kL1);
  const Label v_send({{vt, Level::kL2}}, Level::kL1);
  const Label term_recv({{vt, Level::kL1}}, Level::kL2);

  auto [term, term_port] = MakeRecorder("terminal", u_send, term_recv);
  (void)term;
  auto [u_shell, u_port] = MakeRecorder("U", u_send, Label::DefaultReceive());
  const ProcessId v_shell = MakeProcess("V", v_send, Label::DefaultReceive());

  kernel_.WithProcessContext(v_shell, [&](ProcessContext& ctx) {
    EXPECT_EQ(ctx.Send(u_port, Message{}), Status::kOk);
  });
  kernel_.RunUntilIdle();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(kernel_.SendLabelOf(u_shell).Get(vt), Level::kL2) << "U picked up v's taint";

  received_.clear();
  kernel_.WithProcessContext(u_shell, [&](ProcessContext& ctx) {
    EXPECT_EQ(ctx.Send(term_port, Message{}), Status::kOk);
  });
  kernel_.RunUntilIdle();
  EXPECT_TRUE(received_.empty()) << "tainted U may no longer reach the terminal";
}

// --- Integrity (§5.4) -------------------------------------------------------

TEST_F(KernelPolicyTest, MandatoryIntegrityLostOnLowIntegrityReceipt) {
  // P speaks for u (uG at 0). The moment P receives a message from a process
  // that does not speak for u, PS(uG) rises to 1 and the privilege is gone.
  const ProcessId idp = MakeProcess("identity");
  Handle ug;
  kernel_.WithProcessContext(idp, [&](ProcessContext& ctx) { ug = ctx.NewHandle(); });

  auto [p, p_port] = MakeRecorder("P", Label({{ug, Level::kL0}}, Level::kL1));
  const ProcessId q = MakeProcess("Q");
  EXPECT_EQ(kernel_.SendLabelOf(p).Get(ug), Level::kL0);

  kernel_.WithProcessContext(q, [&](ProcessContext& ctx) {
    EXPECT_EQ(ctx.Send(p_port, Message{}), Status::kOk);
  });
  kernel_.RunUntilIdle();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(kernel_.SendLabelOf(p).Get(ug), Level::kL1)
      << "low-integrity input must destroy the speaks-for level";
}

TEST_F(KernelPolicyTest, NetworkCannotCorruptSystemFiles) {
  // §5.4: the file server requires V(s) ≤ 1 for system-file writes; the
  // network daemon's send label {s 2, 1} can never satisfy it.
  const ProcessId fsp = MakeProcess("fs-owner");
  Handle s;
  kernel_.WithProcessContext(fsp, [&](ProcessContext& ctx) { s = ctx.NewHandle(); });

  auto [fs, fs_port] = MakeRecorder("fileserver");
  (void)fs;
  const ProcessId netd = MakeProcess("netd", Label({{s, Level::kL2}}, Level::kL1));
  const ProcessId sysd = MakeProcess("sysd", Label({{s, Level::kL1}}, Level::kL1));

  const Label v_required({{s, Level::kL1}}, Level::kL3);
  kernel_.WithProcessContext(netd, [&](ProcessContext& ctx) {
    SendArgs args;
    args.verify = v_required;  // claims s ≤ 1, but PS(s) = 2
    EXPECT_EQ(ctx.Send(fs_port, Message{}, args), Status::kOk);
  });
  kernel_.WithProcessContext(sysd, [&](ProcessContext& ctx) {
    SendArgs args;
    args.verify = v_required;
    EXPECT_EQ(ctx.Send(fs_port, Message{}, args), Status::kOk);
  });
  kernel_.RunUntilIdle();
  ASSERT_EQ(received_.size(), 1u) << "only the high-integrity writer gets through";
  EXPECT_EQ(received_[0].msg.verify.Get(s), Level::kL1);
}

// --- MLS emulation (§5.2 "Multi-level policies") ----------------------------------

TEST_F(KernelPolicyTest, MultiLevelSecurityEmulation) {
  // Two compartments s (secret) and t (top-secret). Receive labels encode
  // clearance; send labels encode the highest data actually seen.
  const ProcessId admin = MakeProcess("admin");
  Handle s;
  Handle t;
  kernel_.WithProcessContext(admin, [&](ProcessContext& ctx) {
    s = ctx.NewHandle();
    t = ctx.NewHandle();
  });
  const Label unclassified_send = Label::DefaultSend();
  const Label secret_send({{s, Level::kL3}}, Level::kL1);
  const Label topsecret_send({{s, Level::kL3}, {t, Level::kL3}}, Level::kL1);
  const Label secret_recv({{s, Level::kL3}}, Level::kL2);
  const Label topsecret_recv({{s, Level::kL3}, {t, Level::kL3}}, Level::kL2);

  // ⊑ encodes "may flow to".
  EXPECT_TRUE(unclassified_send.Leq(secret_recv));
  EXPECT_TRUE(unclassified_send.Leq(topsecret_recv));
  EXPECT_TRUE(secret_send.Leq(secret_recv));
  EXPECT_TRUE(secret_send.Leq(topsecret_recv));
  EXPECT_TRUE(topsecret_send.Leq(topsecret_recv));
  // No read-up / no write-down.
  EXPECT_FALSE(topsecret_send.Leq(secret_recv));
  EXPECT_FALSE(secret_send.Leq(Label::DefaultReceive()));

  // End to end: a top-secret process cannot reach a secret-cleared one.
  auto [sec, sec_port] = MakeRecorder("secret-analyst", secret_send, secret_recv);
  (void)sec;
  const ProcessId ts = MakeProcess("ts-analyst", topsecret_send, topsecret_recv);
  kernel_.WithProcessContext(ts, [&](ProcessContext& ctx) {
    EXPECT_EQ(ctx.Send(sec_port, Message{}), Status::kOk);
  });
  kernel_.RunUntilIdle();
  EXPECT_TRUE(received_.empty());

  // The odd label {t 3, 1} can still flow to top-secret clearance (§5.2).
  const Label odd({{t, Level::kL3}}, Level::kL1);
  EXPECT_TRUE(odd.Leq(topsecret_recv));
  EXPECT_FALSE(odd.Leq(secret_recv));
}

// --- Capabilities (§5.5) -------------------------------------------------------

TEST_F(KernelPolicyTest, PortSendRightsAreCapabilities) {
  // P creates p; nobody can send to p until P grants p ⋆, and the grantee
  // can re-delegate the right.
  auto [owner, p] = MakeRecorder("owner");
  // MakeRecorder opened the port; restore the closed default form {p 0, 3}.
  kernel_.WithProcessContext(owner, [&](ProcessContext& ctx) {
    EXPECT_EQ(ctx.SetPortLabel(p, Label({{p, Level::kL0}}, Level::kL3)), Status::kOk);
  });

  auto [friend_pid, friend_port] = MakeRecorder("friend");
  auto [stranger_pid, stranger_port] = MakeRecorder("stranger");
  (void)friend_port;
  (void)stranger_port;

  // Neither can send yet.
  for (ProcessId pid : {friend_pid, stranger_pid}) {
    kernel_.WithProcessContext(pid, [&](ProcessContext& ctx) {
      EXPECT_EQ(ctx.Send(p, Message{}), Status::kOk);
    });
  }
  kernel_.RunUntilIdle();
  EXPECT_TRUE(received_.empty());
  EXPECT_EQ(kernel_.stats().drops_label_check, 2u);

  // Owner grants the friend p ⋆ (via a message through the friend's port).
  kernel_.WithProcessContext(owner, [&](ProcessContext& ctx) {
    SendArgs args;
    args.decont_send = Label({{p, Level::kStar}}, Level::kL3);
    EXPECT_EQ(ctx.Send(friend_port, Message{}, args), Status::kOk);
  });
  kernel_.RunUntilIdle();
  received_.clear();

  // Friend can now send to p; the stranger still cannot.
  kernel_.WithProcessContext(friend_pid, [&](ProcessContext& ctx) {
    Message m;
    m.data = "capability exercised";
    EXPECT_EQ(ctx.Send(p, std::move(m)), Status::kOk);
  });
  kernel_.WithProcessContext(stranger_pid, [&](ProcessContext& ctx) {
    EXPECT_EQ(ctx.Send(p, Message{}), Status::kOk);
  });
  kernel_.RunUntilIdle();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].msg.data, "capability exercised");

  // Re-delegation: friend passes the right on to the stranger.
  received_.clear();
  kernel_.WithProcessContext(friend_pid, [&](ProcessContext& ctx) {
    SendArgs args;
    args.decont_send = Label({{p, Level::kStar}}, Level::kL3);
    EXPECT_EQ(ctx.Send(stranger_port, Message{}, args), Status::kOk);
  });
  kernel_.RunUntilIdle();
  received_.clear();
  kernel_.WithProcessContext(stranger_pid, [&](ProcessContext& ctx) {
    EXPECT_EQ(ctx.Send(p, Message{}), Status::kOk);
  });
  kernel_.RunUntilIdle();
  EXPECT_EQ(received_.size(), 1u) << "capabilities are transferable";
}

}  // namespace
}  // namespace asbestos
