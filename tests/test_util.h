// Shared test scaffolding.
#ifndef TESTS_TEST_UTIL_H_
#define TESTS_TEST_UTIL_H_

#include <functional>
#include <utility>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/kernel/message.h"
#include "src/kernel/process.h"

namespace asbestos::testing {

// A process whose behaviour is supplied by lambdas, for scripting kernel
// scenarios without writing a ProcessCode subclass per test.
class ScriptedProcess : public ProcessCode {
 public:
  using Starter = std::function<void(ProcessContext&)>;
  using Handler = std::function<void(ProcessContext&, const Message&)>;

  explicit ScriptedProcess(Starter starter = nullptr, Handler handler = nullptr)
      : starter_(std::move(starter)), handler_(std::move(handler)) {}

  void Start(ProcessContext& ctx) override {
    if (starter_) {
      starter_(ctx);
    }
  }

  void HandleMessage(ProcessContext& ctx, const Message& msg) override {
    if (handler_) {
      handler_(ctx, msg);
    }
  }

 private:
  Starter starter_;
  Handler handler_;
};

// A process that records every message it receives.
class RecorderProcess : public ProcessCode {
 public:
  struct Received {
    Message msg;
    EpId ep_id;
    bool new_ep;
    Label send_label_after;
  };

  explicit RecorderProcess(std::vector<Received>* sink) : sink_(sink) {}

  void HandleMessage(ProcessContext& ctx, const Message& msg) override {
    sink_->push_back(Received{msg, ctx.ep_id(), ctx.in_new_ep(), ctx.send_label()});
  }

 private:
  std::vector<Received>* sink_;
};

}  // namespace asbestos::testing

#endif  // TESTS_TEST_UTIL_H_
