// Shared test scaffolding.
#ifndef TESTS_TEST_UTIL_H_
#define TESTS_TEST_UTIL_H_

#include <dirent.h>
#include <stdlib.h>
#include <unistd.h>

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/base/panic.h"
#include "src/kernel/kernel.h"
#include "src/kernel/message.h"
#include "src/kernel/process.h"

namespace asbestos::testing {

// A throwaway on-disk directory for store/WAL tests; removed recursively on
// destruction (tests point stores at subdirectories of it).
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/asbestos_test.XXXXXX";
    ASB_ASSERT(::mkdtemp(tmpl) != nullptr);
    path_ = tmpl;
  }

  ~TempDir() { RemoveTree(path_); }

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const { return path_; }

 private:
  static void RemoveTree(const std::string& path) {
    if (DIR* d = ::opendir(path.c_str())) {
      while (struct dirent* e = ::readdir(d)) {
        const std::string name = e->d_name;
        if (name != "." && name != "..") {
          const std::string child = path + "/" + name;
          if (::unlink(child.c_str()) != 0) {
            RemoveTree(child);  // a subdirectory (e.g. a store's data dir)
          }
        }
      }
      ::closedir(d);
    }
    ::rmdir(path.c_str());
  }

  std::string path_;
};

// A process whose behaviour is supplied by lambdas, for scripting kernel
// scenarios without writing a ProcessCode subclass per test.
class ScriptedProcess : public ProcessCode {
 public:
  using Starter = std::function<void(ProcessContext&)>;
  using Handler = std::function<void(ProcessContext&, const Message&)>;

  explicit ScriptedProcess(Starter starter = nullptr, Handler handler = nullptr)
      : starter_(std::move(starter)), handler_(std::move(handler)) {}

  void Start(ProcessContext& ctx) override {
    if (starter_) {
      starter_(ctx);
    }
  }

  void HandleMessage(ProcessContext& ctx, const Message& msg) override {
    if (handler_) {
      handler_(ctx, msg);
    }
  }

 private:
  Starter starter_;
  Handler handler_;
};

// A process that records every message it receives.
class RecorderProcess : public ProcessCode {
 public:
  struct Received {
    Message msg;
    EpId ep_id;
    bool new_ep;
    Label send_label_after;
  };

  explicit RecorderProcess(std::vector<Received>* sink) : sink_(sink) {}

  void HandleMessage(ProcessContext& ctx, const Message& msg) override {
    sink_->push_back(Received{msg, ctx.ep_id(), ctx.in_new_ep(), ctx.send_label()});
  }

 private:
  std::vector<Received>* sink_;
};

}  // namespace asbestos::testing

#endif  // TESTS_TEST_UTIL_H_
