// netd in isolation: the READ/WRITE/SELECT/CONTROL/ADD_TAINT protocol,
// port-per-connection labeling, peeking reads, and listener authentication.
#include <gtest/gtest.h>

#include "src/net/netd.h"
#include "src/net/simnet.h"
#include "tests/test_util.h"

namespace asbestos {
namespace {

using testing::RecorderProcess;
using testing::ScriptedProcess;

class NetdTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto code = std::make_unique<NetdProcess>(&net_);
    netd_ = code.get();
    SpawnArgs args;
    args.name = "netd";
    args.component = Component::kNetwork;
    netd_pid_ = kernel_.CreateProcess(std::move(code), args);

    SpawnArgs largs;
    largs.name = "listener";
    listener_ = kernel_.CreateProcess(std::make_unique<RecorderProcess>(&received_), largs);
    kernel_.WithProcessContext(listener_, [&](ProcessContext& ctx) {
      notify_port_ = ctx.NewPort(Label::Top());
      // Attach a listener, granting netd the notification capability.
      Message listen;
      listen.type = netd_proto::kListen;
      listen.words = {80};
      listen.reply_port = notify_port_;
      SendArgs args2;
      args2.decont_send = Label({{notify_port_, Level::kStar}}, Level::kL3);
      EXPECT_EQ(ctx.Send(netd_->control_port(), std::move(listen), args2), Status::kOk);
    });
    kernel_.RunUntilIdle();
    ASSERT_EQ(received_.size(), 1u);
    EXPECT_EQ(received_[0].msg.type, netd_proto::kListenR);
    received_.clear();
  }

  void Poll() {
    kernel_.WithProcessContext(netd_pid_, [&](ProcessContext& ctx) { netd_->PollNetwork(ctx); });
    kernel_.RunUntilIdle();
  }

  // Opens a client connection and returns the uC the listener was granted.
  Handle Connect(ConnId* conn_out = nullptr) {
    const ConnId conn = net_.ClientConnect(80);
    EXPECT_NE(conn, kNoConn);
    if (conn_out != nullptr) {
      *conn_out = conn;
    }
    Poll();
    EXPECT_FALSE(received_.empty());
    const Message& notify = received_.back().msg;
    EXPECT_EQ(notify.type, netd_proto::kNotifyConn);
    const Handle uc = Handle::FromValue(notify.words[0]);
    received_.clear();
    return uc;
  }

  SimNet net_;
  Kernel kernel_{0x7e7dULL};
  NetdProcess* netd_ = nullptr;
  ProcessId netd_pid_ = kNoProcess;
  ProcessId listener_ = kNoProcess;
  Handle notify_port_;
  std::vector<RecorderProcess::Received> received_;
};

TEST_F(NetdTest, ConnectionNotifyGrantsCapability) {
  const Handle uc = Connect();
  EXPECT_TRUE(kernel_.PortAlive(uc));
  // The listener received uC at ⋆ via D_S.
  EXPECT_EQ(kernel_.SendLabelOf(listener_).Get(uc), Level::kStar);
}

TEST_F(NetdTest, StrangerCannotUseConnectionPort) {
  const Handle uc = Connect();
  SpawnArgs args;
  args.name = "stranger";
  const ProcessId stranger = kernel_.CreateProcess(std::make_unique<ScriptedProcess>(), args);
  const uint64_t drops = kernel_.stats().drops_label_check;
  kernel_.WithProcessContext(stranger, [&](ProcessContext& ctx) {
    Message w;
    w.type = netd_proto::kWrite;
    w.words = {1};
    w.data = "injected";
    EXPECT_EQ(ctx.Send(uc, std::move(w)), Status::kOk);
  });
  kernel_.RunUntilIdle();
  EXPECT_EQ(kernel_.stats().drops_label_check, drops + 1)
      << "uC is {uC 0, 2}: only ⋆-holders may send";
}

TEST_F(NetdTest, ReadDeliversClientBytes) {
  ConnId conn;
  const Handle uc = Connect(&conn);
  net_.ClientSend(conn, "GET / HTTP/1.0\r\n\r\n");
  Poll();
  kernel_.WithProcessContext(listener_, [&](ProcessContext& ctx) {
    Message r;
    r.type = netd_proto::kRead;
    r.words = {7, 0, 0, 0};
    r.reply_port = notify_port_;
    EXPECT_EQ(ctx.Send(uc, std::move(r)), Status::kOk);
  });
  kernel_.RunUntilIdle();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].msg.type, netd_proto::kReadR);
  EXPECT_EQ(received_[0].msg.words[0], 7u) << "cookie echoed";
  EXPECT_EQ(received_[0].msg.data, "GET / HTTP/1.0\r\n\r\n");
}

TEST_F(NetdTest, ReadBlocksUntilDataArrives) {
  ConnId conn;
  const Handle uc = Connect(&conn);
  kernel_.WithProcessContext(listener_, [&](ProcessContext& ctx) {
    Message r;
    r.type = netd_proto::kRead;
    r.words = {1, 0, 0, 0};
    r.reply_port = notify_port_;
    EXPECT_EQ(ctx.Send(uc, std::move(r)), Status::kOk);
  });
  kernel_.RunUntilIdle();
  EXPECT_TRUE(received_.empty()) << "no data yet: the read is pending";
  net_.ClientSend(conn, "late bytes");
  Poll();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].msg.data, "late bytes");
}

TEST_F(NetdTest, PeekDoesNotConsume) {
  ConnId conn;
  const Handle uc = Connect(&conn);
  net_.ClientSend(conn, "abcdef");
  Poll();
  // Peek at offset 0, then peek at offset 4, then a consuming read.
  auto read = [&](uint64_t cookie, uint64_t peek, uint64_t offset) {
    kernel_.WithProcessContext(listener_, [&](ProcessContext& ctx) {
      Message r;
      r.type = netd_proto::kRead;
      r.words = {cookie, 0, peek, offset};
      r.reply_port = notify_port_;
      EXPECT_EQ(ctx.Send(uc, std::move(r)), Status::kOk);
    });
    kernel_.RunUntilIdle();
  };
  read(1, 1, 0);
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].msg.data, "abcdef");
  received_.clear();
  read(2, 1, 4);
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].msg.data, "ef") << "peek offset skips already-seen bytes";
  received_.clear();
  read(3, 0, 0);  // consuming
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].msg.data, "abcdef") << "peeks left the stream intact";
}

TEST_F(NetdTest, EofSignaledAfterClientClose) {
  ConnId conn;
  const Handle uc = Connect(&conn);
  net_.ClientClose(conn);
  Poll();
  kernel_.WithProcessContext(listener_, [&](ProcessContext& ctx) {
    Message r;
    r.type = netd_proto::kRead;
    r.words = {1, 0, 0, 0};
    r.reply_port = notify_port_;
    EXPECT_EQ(ctx.Send(uc, std::move(r)), Status::kOk);
  });
  kernel_.RunUntilIdle();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].msg.words[1], 1u) << "eof flag set";
  EXPECT_TRUE(received_[0].msg.data.empty());
}

TEST_F(NetdTest, WriteReachesClientAndSelectReportsSpace) {
  ConnId conn;
  const Handle uc = Connect(&conn);
  kernel_.WithProcessContext(listener_, [&](ProcessContext& ctx) {
    Message w;
    w.type = netd_proto::kWrite;
    w.words = {1};
    w.data = "hello client";
    ctx.Send(uc, std::move(w));
    Message s;
    s.type = netd_proto::kSelect;
    s.words = {2};
    s.reply_port = notify_port_;
    ctx.Send(uc, std::move(s));
  });
  kernel_.RunUntilIdle();
  EXPECT_EQ(net_.ClientTakeReceived(conn), "hello client");
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].msg.type, netd_proto::kSelectR);
  EXPECT_GT(received_[0].msg.words[1], 0u);
}

TEST_F(NetdTest, AddTaintChangesPortLabelAndRepliesCarryTaint) {
  ConnId conn;
  const Handle uc = Connect(&conn);
  Handle taint;
  kernel_.WithProcessContext(listener_, [&](ProcessContext& ctx) {
    taint = ctx.NewHandle();
    // Accept the taint ourselves so the tainted replies can reach us.
    EXPECT_EQ(ctx.SetReceiveLevel(taint, Level::kL3), Status::kOk);
    Message m;
    m.type = netd_proto::kAddTaint;
    m.words = {1, taint.value()};
    m.reply_port = notify_port_;
    SendArgs args;
    args.decont_send = Label({{taint, Level::kStar}}, Level::kL3);  // grant netd ⋆
    EXPECT_EQ(ctx.Send(uc, std::move(m), args), Status::kOk);
  });
  kernel_.RunUntilIdle();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].msg.type, netd_proto::kAddTaintR);
  received_.clear();

  // netd now holds the taint at ⋆ and raised its receive label to 3.
  EXPECT_EQ(kernel_.SendLabelOf(kernel_.FindProcessByName("netd")->id).Get(taint),
            Level::kStar);
  EXPECT_EQ(kernel_.RecvLabelOf(kernel_.FindProcessByName("netd")->id).Get(taint),
            Level::kL3);

  // Replies on the connection are contaminated with the taint.
  net_.ClientSend(conn, "payload");
  Poll();
  kernel_.WithProcessContext(listener_, [&](ProcessContext& ctx) {
    Message r;
    r.type = netd_proto::kRead;
    r.words = {2, 0, 0, 0};
    r.reply_port = notify_port_;
    EXPECT_EQ(ctx.Send(uc, std::move(r)), Status::kOk);
  });
  kernel_.RunUntilIdle();
  ASSERT_EQ(received_.size(), 1u);
  // The listener minted the taint, so it holds ⋆ and the contaminated reply
  // cannot stick to it (§5.3) — exactly why ok-demux can shepherd every
  // user's connection without accumulating taint. Its verify view of the
  // message still shows the data arrived.
  EXPECT_EQ(received_[0].send_label_after.Get(taint), Level::kStar);
  EXPECT_EQ(received_[0].msg.data, "payload");

  // A separate cleared-but-unprivileged observer *does* get contaminated by
  // the same kind of reply.
  std::vector<RecorderProcess::Received> observed;
  SpawnArgs oargs;
  oargs.name = "observer";
  oargs.recv_label = Label({{taint, Level::kL3}}, Level::kL2);
  const ProcessId observer =
      kernel_.CreateProcess(std::make_unique<RecorderProcess>(&observed), oargs);
  Handle observer_port;
  kernel_.WithProcessContext(observer, [&](ProcessContext& ctx) {
    observer_port = ctx.NewPort(Label::Top());
    EXPECT_EQ(ctx.SetPortLabel(observer_port, Label::Top()), Status::kOk);
  });
  net_.ClientSend(conn, "more");
  Poll();
  kernel_.WithProcessContext(listener_, [&](ProcessContext& ctx) {
    Message r;
    r.type = netd_proto::kRead;
    r.words = {3, 0, 0, 0};
    r.reply_port = observer_port;  // reply goes to the observer instead
    EXPECT_EQ(ctx.Send(uc, std::move(r)), Status::kOk);
  });
  kernel_.RunUntilIdle();
  ASSERT_EQ(observed.size(), 1u);
  EXPECT_EQ(observed[0].send_label_after.Get(taint), Level::kL3)
      << "a non-⋆ reader of tainted connection data is contaminated";
}

TEST_F(NetdTest, AddTaintWithoutGrantRefused) {
  ConnId conn;
  const Handle uc = Connect(&conn);
  Handle taint;
  kernel_.WithProcessContext(listener_, [&](ProcessContext& ctx) {
    taint = ctx.NewHandle();
    Message m;
    m.type = netd_proto::kAddTaint;
    m.words = {1, taint.value()};
    m.reply_port = notify_port_;
    // No D_S: netd never gets ⋆ and must refuse the taint.
    EXPECT_EQ(ctx.Send(uc, std::move(m)), Status::kOk);
  });
  kernel_.RunUntilIdle();
  EXPECT_TRUE(received_.empty()) << "no AddTaintR: the raise failed inside netd";
  EXPECT_EQ(kernel_.RecvLabelOf(netd_pid_).Get(taint), kDefaultReceiveLevel);
}

TEST_F(NetdTest, CloseTearsDownPortAndReleasesCapability) {
  ConnId conn;
  const Handle uc = Connect(&conn);
  kernel_.WithProcessContext(listener_, [&](ProcessContext& ctx) {
    Message c;
    c.type = netd_proto::kControl;
    c.words = {1, netd_proto::kControlOpClose};
    EXPECT_EQ(ctx.Send(uc, std::move(c)), Status::kOk);
  });
  kernel_.RunUntilIdle();
  EXPECT_FALSE(kernel_.PortAlive(uc));
  EXPECT_EQ(kernel_.SendLabelOf(netd_pid_).Get(uc), kDefaultSendLevel)
      << "netd released its per-connection ⋆ (paper §9.3)";
  EXPECT_TRUE(net_.ClientSeesClosed(conn));
}

TEST_F(NetdTest, UnauthorizedListenerIgnored) {
  // Spawn a netd that only trusts a specific verification handle.
  SimNet net2;
  auto code = std::make_unique<NetdProcess>(&net2);
  NetdProcess* netd2 = code.get();
  SpawnArgs args;
  args.name = "netd2";
  args.env = {{"demux_verify", 0x1234567}};
  kernel_.CreateProcess(std::move(code), args);

  SpawnArgs iargs;
  iargs.name = "imposter";
  const ProcessId imposter = kernel_.CreateProcess(std::make_unique<ScriptedProcess>(), iargs);
  kernel_.WithProcessContext(imposter, [&](ProcessContext& ctx) {
    Message listen;
    listen.type = netd_proto::kListen;
    listen.words = {80};
    listen.reply_port = ctx.NewPort(Label::Top());
    EXPECT_EQ(ctx.Send(netd2->control_port(), std::move(listen)), Status::kOk);
  });
  kernel_.RunUntilIdle();
  EXPECT_FALSE(net2.IsListening(80)) << "LISTEN without the demux credential is ignored";
}

}  // namespace
}  // namespace asbestos
