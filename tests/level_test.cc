#include "src/labels/level.h"

#include <gtest/gtest.h>

namespace asbestos {
namespace {

TEST(LevelTest, OrderingStarIsLowest) {
  EXPECT_TRUE(LevelLeq(Level::kStar, Level::kL0));
  EXPECT_TRUE(LevelLeq(Level::kStar, Level::kL3));
  EXPECT_FALSE(LevelLeq(Level::kL0, Level::kStar));
}

TEST(LevelTest, OrderingIsTotal) {
  const Level order[] = {Level::kStar, Level::kL0, Level::kL1, Level::kL2, Level::kL3};
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      EXPECT_EQ(LevelLeq(order[i], order[j]), i <= j)
          << LevelName(order[i]) << " vs " << LevelName(order[j]);
    }
  }
}

TEST(LevelTest, MaxMin) {
  EXPECT_EQ(LevelMax(Level::kStar, Level::kL2), Level::kL2);
  EXPECT_EQ(LevelMin(Level::kStar, Level::kL2), Level::kStar);
  EXPECT_EQ(LevelMax(Level::kL1, Level::kL1), Level::kL1);
  EXPECT_EQ(LevelMin(Level::kL3, Level::kL0), Level::kL0);
}

TEST(LevelTest, Defaults) {
  // Paper §5.1: send labels default to 1, receive labels to 2.
  EXPECT_EQ(kDefaultSendLevel, Level::kL1);
  EXPECT_EQ(kDefaultReceiveLevel, Level::kL2);
}

TEST(LevelTest, Names) {
  EXPECT_STREQ(LevelName(Level::kStar), "*");
  EXPECT_STREQ(LevelName(Level::kL0), "0");
  EXPECT_STREQ(LevelName(Level::kL3), "3");
}

TEST(LevelTest, FromNameRoundTrip) {
  for (Level l : {Level::kStar, Level::kL0, Level::kL1, Level::kL2, Level::kL3}) {
    Level parsed;
    ASSERT_TRUE(LevelFromName(LevelName(l)[0], &parsed));
    EXPECT_EQ(parsed, l);
  }
  Level ignored;
  EXPECT_FALSE(LevelFromName('4', &ignored));
  EXPECT_FALSE(LevelFromName('x', &ignored));
}

}  // namespace
}  // namespace asbestos
