// The §6.1 future-work extension: event processes selectively sharing
// memory, subject to label checks. Regions are named by unguessable handles;
// mapping is receiving (receive-label checked, contaminates the mapper);
// writes are checked against the region label at write time and vanish
// silently when the writer has grown too tainted — the memory analogue of
// unreliable send.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/kernel/kernel.h"
#include "tests/test_util.h"

namespace asbestos {
namespace {

using testing::ScriptedProcess;

// A worker whose event processes execute small scripts the test enqueues as
// messages. Message words[0] selects the action.
enum Action : uint64_t {
  kShare = 1,        // share one page containing "hello" at label {taint level, 1}
  kMap = 2,          // map region words[1] and read 5 bytes from it
  kMapAndWrite = 3,  // map region words[1], write "patch", read back
  kSelfTaintAndWrite = 4,  // map words[1], self-taint with words[2]@3, write, read
};

struct Shared {
  Handle region;
  std::string last_read;
  Status last_map_status = Status::kOk;
  Label region_label = Label::Top();
  Handle taint;
};

class RegionWorker : public ProcessCode {
 public:
  RegionWorker(Handle* service_out, Shared* shared)
      : service_out_(service_out), shared_(shared) {}

  void Start(ProcessContext& ctx) override {
    *service_out_ = ctx.NewPort(Label::Top());
    ASB_ASSERT(ctx.SetPortLabel(*service_out_, Label::Top()) == Status::kOk);
    ctx.EnterEventRealm();
  }

  void HandleMessage(ProcessContext& ctx, const Message& msg) override {
    constexpr uint64_t kBuf = 0x100000;   // page-aligned scratch
    constexpr uint64_t kView = 0x200000;  // where regions get mapped
    switch (msg.words.empty() ? 0 : msg.words[0]) {
      case kShare: {
        ctx.WriteMem(kBuf, "hello", 5);
        auto result = ctx.ShareRegion(kBuf, 1, shared_->region_label);
        ASB_ASSERT(result.ok());
        shared_->region = result.value();
        return;
      }
      case kMap: {
        shared_->last_map_status =
            ctx.MapSharedRegion(Handle::FromValue(msg.words[1]), kView);
        if (shared_->last_map_status == Status::kOk) {
          char buf[6] = {};
          ctx.ReadMem(kView, buf, 5);
          shared_->last_read = buf;
        }
        return;
      }
      case kMapAndWrite: {
        shared_->last_map_status =
            ctx.MapSharedRegion(Handle::FromValue(msg.words[1]), kView);
        if (shared_->last_map_status == Status::kOk) {
          ctx.WriteMem(kView, "patch", 5);
          char buf[6] = {};
          ctx.ReadMem(kView, buf, 5);
          shared_->last_read = buf;
        }
        return;
      }
      case kSelfTaintAndWrite: {
        shared_->last_map_status =
            ctx.MapSharedRegion(Handle::FromValue(msg.words[1]), kView);
        ASB_ASSERT(shared_->last_map_status == Status::kOk);
        // Acquire a taint above the region label, then try to write.
        ASB_ASSERT(ctx.SetSendLevel(Handle::FromValue(msg.words[2]), Level::kL3) ==
                   Status::kOk);
        ctx.WriteMem(kView, "EVIL!", 5);
        char buf[6] = {};
        ctx.ReadMem(kView, buf, 5);
        shared_->last_read = buf;
        return;
      }
      default:
        return;
    }
  }

 private:
  Handle* service_out_;
  Shared* shared_;
};

class EpSharedMemoryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SpawnArgs wargs;
    wargs.name = "worker";
    kernel_.CreateProcess(std::make_unique<RegionWorker>(&service_, &shared_), wargs);
    SpawnArgs dargs;
    dargs.name = "driver";
    driver_ = kernel_.CreateProcess(std::make_unique<ScriptedProcess>(), dargs);
    kernel_.WithProcessContext(driver_, [&](ProcessContext& ctx) {
      shared_.taint = ctx.NewHandle();
    });
  }

  // Sends an action; a message to the service port forks a fresh EP.
  void Run(uint64_t action, uint64_t w1 = 0, uint64_t w2 = 0,
           const SendArgs& args = SendArgs()) {
    kernel_.WithProcessContext(driver_, [&](ProcessContext& ctx) {
      Message m;
      m.words = {action, w1, w2};
      ASSERT_EQ(ctx.Send(service_, std::move(m), args), Status::kOk);
    });
    kernel_.RunUntilIdle();
  }

  Kernel kernel_{0x5ea5ULL};
  Handle service_;
  Shared shared_;
  ProcessId driver_ = kNoProcess;
};

TEST_F(EpSharedMemoryTest, ShareAndMapAcrossEventProcesses) {
  shared_.region_label = Label(Level::kL1);
  Run(kShare);
  ASSERT_TRUE(shared_.region.valid());
  Run(kMap, shared_.region.value());
  EXPECT_EQ(shared_.last_map_status, Status::kOk);
  EXPECT_EQ(shared_.last_read, "hello") << "a sibling EP sees the shared snapshot";
}

TEST_F(EpSharedMemoryTest, WritesAreVisibleToLaterMappers) {
  shared_.region_label = Label(Level::kL1);
  Run(kShare);
  Run(kMapAndWrite, shared_.region.value());
  EXPECT_EQ(shared_.last_read, "patch");
  Run(kMap, shared_.region.value());
  EXPECT_EQ(shared_.last_read, "patch") << "shared pages are not copy-on-write";
}

TEST_F(EpSharedMemoryTest, MappingContaminatesTheMapper) {
  // Region labeled with a taint at 2: mapping must raise the mapper's send
  // label to that level (reading shared memory is receiving).
  shared_.region_label = Label({{shared_.taint, Level::kL2}}, Level::kL1);
  Run(kShare);
  ASSERT_TRUE(shared_.region.valid());
  Run(kMap, shared_.region.value());
  EXPECT_EQ(shared_.last_map_status, Status::kOk);
  // Find the mapper EP's label: it is the most recent EP (id 2).
  Process* worker = kernel_.FindProcessByName("worker");
  ASSERT_NE(worker, nullptr);
  const EpId mapper = worker->eps.rbegin()->first;
  EXPECT_EQ(kernel_.SendLabelOf(worker->id, mapper).Get(shared_.taint), Level::kL2);
}

TEST_F(EpSharedMemoryTest, MapRefusedWithoutClearance) {
  // Region at taint level 3: the default receive label {2} cannot accept it.
  shared_.region_label = Label({{shared_.taint, Level::kL3}}, Level::kL1);
  // The sharer must itself satisfy QS ⊑ label — it does (untainted, and the
  // label sits above {1}).
  Run(kShare);
  ASSERT_TRUE(shared_.region.valid());
  Run(kMap, shared_.region.value());
  EXPECT_EQ(shared_.last_map_status, Status::kAccessDenied);
  EXPECT_TRUE(shared_.last_read.empty());

  // With clearance granted (D_R raises the fresh EP's receive label), the
  // same map succeeds.
  SendArgs args;
  args.decont_receive = Label({{shared_.taint, Level::kL3}}, Level::kStar);
  // The driver needs ⋆ for the taint: it created the handle.
  Run(kMap, shared_.region.value(), 0, args);
  EXPECT_EQ(shared_.last_map_status, Status::kOk);
  EXPECT_EQ(shared_.last_read, "hello");
}

TEST_F(EpSharedMemoryTest, ShareRefusedAboveOwnTaint) {
  // An EP contaminated at 3 cannot publish a region labeled below its taint:
  // that would declassify through memory. Checked through a dedicated realm
  // process whose event process is created already tainted.
  Handle svc2;
  struct Out {
    Status status = Status::kOk;
  } out;
  class Sharer : public ProcessCode {
   public:
    Sharer(Handle* svc, Out* out) : svc_(svc), out_(out) {}
    void Start(ProcessContext& ctx) override {
      *svc_ = ctx.NewPort(Label::Top());
      ASB_ASSERT(ctx.SetPortLabel(*svc_, Label::Top()) == Status::kOk);
      ctx.EnterEventRealm();
    }
    void HandleMessage(ProcessContext& ctx, const Message&) override {
      ctx.WriteMem(0x100000, "x", 1);
      out_->status = ctx.ShareRegion(0x100000, 1, Label(Level::kL1)).status();
    }

   private:
    Handle* svc_;
    Out* out_;
  };
  SpawnArgs sargs;
  sargs.name = "sharer";
  kernel_.CreateProcess(std::make_unique<Sharer>(&svc2, &out), sargs);
  kernel_.WithProcessContext(driver_, [&](ProcessContext& ctx) {
    Message m;
    SendArgs args;
    args.contaminate = Label({{shared_.taint, Level::kL3}}, Level::kStar);
    args.decont_receive = Label({{shared_.taint, Level::kL3}}, Level::kStar);
    ASSERT_EQ(ctx.Send(svc2, std::move(m), args), Status::kOk);
  });
  kernel_.RunUntilIdle();
  EXPECT_EQ(out.status, Status::kAccessDenied);
}

TEST_F(EpSharedMemoryTest, TaintedWriterSilentlyDropsWrites) {
  // The central soundness property: once a mapper's send label rises above
  // the region label, its writes stop landing — readers at the region label
  // can never observe higher-taint data.
  shared_.region_label = Label(Level::kL1);
  Run(kShare);
  const uint64_t drops_before = kernel_.stats().shared_writes_dropped;
  Run(kSelfTaintAndWrite, shared_.region.value(), shared_.taint.value());
  EXPECT_EQ(kernel_.stats().shared_writes_dropped, drops_before + 1);
  EXPECT_EQ(shared_.last_read, "hello") << "the tainted write must not be visible";
}

TEST_F(EpSharedMemoryTest, MapRequiresEventProcessContext) {
  SpawnArgs args;
  args.name = "plain";
  const ProcessId plain = kernel_.CreateProcess(std::make_unique<ScriptedProcess>(), args);
  kernel_.WithProcessContext(plain, [&](ProcessContext& ctx) {
    EXPECT_EQ(ctx.ShareRegion(0x100000, 1, Label::Top()).status(), Status::kBadState);
    EXPECT_EQ(ctx.MapSharedRegion(Handle::FromValue(1), 0x200000), Status::kBadState);
  });
}

TEST_F(EpSharedMemoryTest, UnknownRegionAndBadArgs) {
  shared_.region_label = Label(Level::kL1);
  Run(kShare);
  Run(kMap, 0xdeadbeef);  // no such region
  EXPECT_EQ(shared_.last_map_status, Status::kNotFound);
  // Double-map at the same address: kAlreadyExists (checked inside one EP).
  Run(kMapAndWrite, shared_.region.value());
  EXPECT_EQ(shared_.last_map_status, Status::kOk);
}

}  // namespace
}  // namespace asbestos
