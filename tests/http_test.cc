#include "src/http/http.h"

#include <gtest/gtest.h>

namespace asbestos {
namespace {

TEST(HttpRequestParserTest, SimpleGet) {
  HttpRequestParser p;
  EXPECT_EQ(p.Feed("GET /store?op=get&k=a%20b HTTP/1.0\r\nHost: x\r\n\r\n"),
            HttpRequestParser::State::kComplete);
  const HttpRequest& r = p.request();
  EXPECT_EQ(r.method, "GET");
  EXPECT_EQ(r.path, "/store");
  EXPECT_EQ(r.version, "HTTP/1.0");
  EXPECT_EQ(r.Query("op"), "get");
  EXPECT_EQ(r.Query("k"), "a b");
  EXPECT_EQ(r.Header("host"), "x");
  EXPECT_EQ(r.Header("HOST"), "x") << "header names are case-insensitive";
}

TEST(HttpRequestParserTest, IncrementalFeed) {
  HttpRequestParser p;
  EXPECT_EQ(p.Feed("GET / HT"), HttpRequestParser::State::kIncomplete);
  EXPECT_EQ(p.Feed("TP/1.0\r\nA: b"), HttpRequestParser::State::kIncomplete);
  EXPECT_EQ(p.Feed("\r\n\r\n"), HttpRequestParser::State::kComplete);
  EXPECT_EQ(p.request().Header("a"), "b");
}

TEST(HttpRequestParserTest, BodyViaContentLength) {
  HttpRequestParser p;
  EXPECT_EQ(p.Feed("POST /x HTTP/1.0\r\nContent-Length: 5\r\n\r\nhel"),
            HttpRequestParser::State::kIncomplete);
  EXPECT_EQ(p.Feed("lo"), HttpRequestParser::State::kComplete);
  EXPECT_EQ(p.request().body, "hello");
  EXPECT_EQ(p.consumed_bytes(), std::string("POST /x HTTP/1.0\r\nContent-Length: 5\r\n\r\nhello").size());
}

TEST(HttpRequestParserTest, MalformedRequestLine) {
  HttpRequestParser p;
  EXPECT_EQ(p.Feed("GARBAGE\r\n\r\n"), HttpRequestParser::State::kError);
}

TEST(HttpRequestParserTest, MalformedHeader) {
  HttpRequestParser p;
  EXPECT_EQ(p.Feed("GET / HTTP/1.0\r\nnocolonhere\r\n\r\n"), HttpRequestParser::State::kError);
}

TEST(HttpRequestParserTest, BadContentLength) {
  HttpRequestParser p;
  EXPECT_EQ(p.Feed("GET / HTTP/1.0\r\nContent-Length: xyz\r\n\r\n"),
            HttpRequestParser::State::kError);
}

TEST(HttpRequestParserTest, OversizedHeadersRejected) {
  HttpRequestParser p;
  std::string big = "GET / HTTP/1.0\r\nA: ";
  big.append(100 * 1024, 'x');
  EXPECT_EQ(p.Feed(big), HttpRequestParser::State::kError);
}

TEST(UrlDecodeTest, Basics) {
  EXPECT_EQ(UrlDecode("a+b"), "a b");
  EXPECT_EQ(UrlDecode("a%2Fb"), "a/b");
  EXPECT_EQ(UrlDecode("a%2fb"), "a/b");
  EXPECT_EQ(UrlDecode("%"), "%");
  EXPECT_EQ(UrlDecode("%zz"), "%zz") << "invalid escapes pass through";
}

TEST(ParseQueryStringTest, Basics) {
  const auto q = ParseQueryString("a=1&b=&c&d=x%20y");
  EXPECT_EQ(q.at("a"), "1");
  EXPECT_EQ(q.at("b"), "");
  EXPECT_EQ(q.at("c"), "");
  EXPECT_EQ(q.at("d"), "x y");
}

TEST(BuildHttpResponseTest, IncludesContentLength) {
  const std::string r = BuildHttpResponse(200, "OK", {{"X-A", "b"}}, "hello");
  EXPECT_NE(r.find("HTTP/1.0 200 OK\r\n"), std::string::npos);
  EXPECT_NE(r.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_NE(r.find("X-A: b\r\n"), std::string::npos);
  EXPECT_NE(r.find("\r\n\r\nhello"), std::string::npos);
}

TEST(HttpResponseReaderTest, ReadsChunkedArrivals) {
  const std::string resp = BuildHttpResponse(200, "OK", {}, "abcdef");
  HttpResponseReader reader;
  for (size_t i = 0; i < resp.size(); i += 7) {
    reader.Feed(resp.substr(i, 7));
  }
  ASSERT_EQ(reader.state(), HttpResponseReader::State::kComplete);
  EXPECT_EQ(reader.status(), 200);
  EXPECT_EQ(reader.body(), "abcdef");
}

TEST(HttpResponseReaderTest, ErrorOnGarbage) {
  HttpResponseReader reader;
  reader.Feed("NOT HTTP AT ALL\r\n\r\n");
  EXPECT_EQ(reader.state(), HttpResponseReader::State::kError);
}

TEST(HttpResponseReaderTest, PaperSizedResponse) {
  // Paper §9.2.1: 144 bytes of HTTP data, 133 bytes of headers.
  const std::string r = BuildHttpResponse(200, "OK", {{"Server", "okws-asbestos"}},
                                          std::string(11, 'x'));
  HttpResponseReader reader;
  reader.Feed(r);
  EXPECT_EQ(reader.state(), HttpResponseReader::State::kComplete);
  EXPECT_EQ(reader.body().size(), 11u);
}

}  // namespace
}  // namespace asbestos
