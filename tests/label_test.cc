#include "src/labels/label.h"

#include <gtest/gtest.h>

#include "src/labels/handle.h"
#include "src/labels/level.h"

namespace asbestos {
namespace {

Handle H(uint64_t v) { return Handle::FromValue(v); }

TEST(LabelTest, FactoriesAndDefaults) {
  EXPECT_EQ(Label::Top().default_level(), Level::kL3);
  EXPECT_EQ(Label::Bottom().default_level(), Level::kStar);
  EXPECT_EQ(Label::DefaultSend().default_level(), Level::kL1);
  EXPECT_EQ(Label::DefaultReceive().default_level(), Level::kL2);
  EXPECT_EQ(Label().default_level(), Level::kL3);
  EXPECT_EQ(Label::Top().entry_count(), 0u);
}

TEST(LabelTest, GetFallsBackToDefault) {
  const Label l({{H(5), Level::kL3}}, Level::kL1);
  EXPECT_EQ(l.Get(H(5)), Level::kL3);
  EXPECT_EQ(l.Get(H(6)), Level::kL1);
  EXPECT_TRUE(l.HasExplicit(H(5)));
  EXPECT_FALSE(l.HasExplicit(H(6)));
}

TEST(LabelTest, SetAndRemove) {
  Label l(Level::kL1);
  l.Set(H(10), Level::kL3);
  EXPECT_EQ(l.entry_count(), 1u);
  EXPECT_EQ(l.Get(H(10)), Level::kL3);
  l.Set(H(10), Level::kL1);  // back to default removes the entry
  EXPECT_EQ(l.entry_count(), 0u);
  EXPECT_FALSE(l.HasExplicit(H(10)));
  l.CheckRep();
}

TEST(LabelTest, SetOverwrites) {
  Label l(Level::kL1);
  l.Set(H(10), Level::kL3);
  l.Set(H(10), Level::kStar);
  EXPECT_EQ(l.Get(H(10)), Level::kStar);
  EXPECT_EQ(l.entry_count(), 1u);
  l.CheckRep();
}

TEST(LabelTest, MinMaxCaching) {
  Label l(Level::kL1);
  EXPECT_EQ(l.min_level(), Level::kL1);
  EXPECT_EQ(l.max_level(), Level::kL1);
  l.Set(H(1), Level::kL3);
  EXPECT_EQ(l.max_level(), Level::kL3);
  l.Set(H(2), Level::kStar);
  EXPECT_EQ(l.min_level(), Level::kStar);
  l.Set(H(2), Level::kL1);  // removal restores extrema
  EXPECT_EQ(l.min_level(), Level::kL1);
  l.CheckRep();
}

TEST(LabelTest, LeqDefaultDecides) {
  // Unmentioned handles compare default-to-default: {1} ⊑ {2} but not {2} ⊑ {1}.
  EXPECT_TRUE(Label::DefaultSend().Leq(Label::DefaultReceive()));
  EXPECT_FALSE(Label::DefaultReceive().Leq(Label::DefaultSend()));
}

TEST(LabelTest, LeqWithEntries) {
  // Paper Figure 2: VS = {vT 3, 1} is not ⊑ UTR = {uT 3, 2} because
  // VS(vT) = 3 > UTR(vT) = 2; US = {uT 3, 1} ⊑ UTR.
  const Handle ut = H(100);
  const Handle vt = H(200);
  const Label us({{ut, Level::kL3}}, Level::kL1);
  const Label vs({{vt, Level::kL3}}, Level::kL1);
  const Label utr({{ut, Level::kL3}}, Level::kL2);
  EXPECT_TRUE(us.Leq(utr));
  EXPECT_FALSE(vs.Leq(utr));
}

TEST(LabelTest, LeqStarBelowEverything) {
  const Label starry({{H(1), Level::kStar}}, Level::kL1);
  const Label zero({{H(1), Level::kL0}}, Level::kL1);
  EXPECT_TRUE(starry.Leq(zero));
  EXPECT_FALSE(zero.Leq(starry));
}

TEST(LabelTest, LubPointwiseMax) {
  const Label a({{H(1), Level::kL3}, {H(2), Level::kL0}}, Level::kL1);
  const Label b({{H(2), Level::kL2}, {H(3), Level::kStar}}, Level::kL1);
  const Label j = Label::Lub(a, b);
  EXPECT_EQ(j.default_level(), Level::kL1);
  EXPECT_EQ(j.Get(H(1)), Level::kL3);
  EXPECT_EQ(j.Get(H(2)), Level::kL2);
  EXPECT_EQ(j.Get(H(3)), Level::kL1);  // max(⋆, default 1) = 1 → folded into default
  EXPECT_EQ(j.entry_count(), 2u);
  j.CheckRep();
}

TEST(LabelTest, GlbPointwiseMin) {
  const Label a({{H(1), Level::kL3}, {H(2), Level::kL0}}, Level::kL2);
  const Label b({{H(2), Level::kL2}, {H(3), Level::kStar}}, Level::kL1);
  const Label m = Label::Glb(a, b);
  EXPECT_EQ(m.default_level(), Level::kL1);
  EXPECT_EQ(m.Get(H(1)), Level::kL1);  // min(3, default 1)
  EXPECT_EQ(m.Get(H(2)), Level::kL0);
  EXPECT_EQ(m.Get(H(3)), Level::kStar);
  m.CheckRep();
}

TEST(LabelTest, LubWithBottomIsIdentity) {
  const Label a({{H(9), Level::kL3}}, Level::kL1);
  EXPECT_TRUE(Label::Lub(a, Label::Bottom()).Equals(a));
  EXPECT_TRUE(Label::Lub(Label::Bottom(), a).Equals(a));
}

TEST(LabelTest, GlbWithTopIsIdentity) {
  const Label a({{H(9), Level::kL0}}, Level::kL1);
  EXPECT_TRUE(Label::Glb(a, Label::Top()).Equals(a));
  EXPECT_TRUE(Label::Glb(Label::Top(), a).Equals(a));
}

TEST(LabelTest, StarsOnlyDefaultNonStar) {
  // L⋆(h) = ⋆ where L(h) = ⋆, else 3.
  const Label l({{H(1), Level::kStar}, {H(2), Level::kL0}, {H(3), Level::kL3}}, Level::kL1);
  const Label s = l.StarsOnly();
  EXPECT_EQ(s.default_level(), Level::kL3);
  EXPECT_EQ(s.Get(H(1)), Level::kStar);
  EXPECT_EQ(s.Get(H(2)), Level::kL3);
  EXPECT_EQ(s.Get(H(3)), Level::kL3);
  EXPECT_EQ(s.entry_count(), 1u);
  s.CheckRep();
}

TEST(LabelTest, StarsOnlyDefaultStar) {
  const Label l({{H(1), Level::kL2}}, Level::kStar);
  const Label s = l.StarsOnly();
  EXPECT_EQ(s.default_level(), Level::kStar);
  EXPECT_EQ(s.Get(H(1)), Level::kL3);
  EXPECT_EQ(s.Get(H(2)), Level::kStar);
  s.CheckRep();
}

TEST(LabelTest, JoinInPlaceNoChangeWhenDominated) {
  Label a({{H(1), Level::kL3}}, Level::kL1);
  const Label b({{H(1), Level::kL2}}, Level::kL1);
  a.JoinInPlace(b);
  EXPECT_EQ(a.Get(H(1)), Level::kL3);
  EXPECT_EQ(a.entry_count(), 1u);
}

TEST(LabelTest, JoinInPlaceRaises) {
  Label a(Level::kL1);
  const Label taint({{H(7), Level::kL3}}, Level::kStar);
  a.JoinInPlace(taint);
  EXPECT_EQ(a.Get(H(7)), Level::kL3);
  EXPECT_EQ(a.default_level(), Level::kL1);
}

TEST(LabelTest, MeetInPlaceLowers) {
  Label a({{H(7), Level::kL1}}, Level::kL1);
  const Label grant({{H(7), Level::kStar}}, Level::kL3);
  a.MeetInPlace(grant);
  EXPECT_EQ(a.Get(H(7)), Level::kStar);
  EXPECT_EQ(a.default_level(), Level::kL1);
}

TEST(LabelTest, CopyIsIndependentCow) {
  Label a({{H(5), Level::kL3}}, Level::kL1);
  Label b = a;
  b.Set(H(5), Level::kL0);
  EXPECT_EQ(a.Get(H(5)), Level::kL3) << "mutating a copy must not affect the original";
  EXPECT_EQ(b.Get(H(5)), Level::kL0);
  a.CheckRep();
  b.CheckRep();
}

TEST(LabelTest, CopySharesMemoryUntilWrite) {
  const int64_t before = GetLabelMemStats().live_bytes;
  Label a({{H(5), Level::kL3}}, Level::kL1);
  const int64_t with_a = GetLabelMemStats().live_bytes;
  Label b = a;  // shares the representation
  EXPECT_EQ(GetLabelMemStats().live_bytes, with_a);
  b.Set(H(6), Level::kL3);  // forces an unshare
  EXPECT_GT(GetLabelMemStats().live_bytes, with_a);
  (void)before;
}

TEST(LabelTest, MemStatsReturnToBaseline) {
  const int64_t before = GetLabelMemStats().live_bytes;
  {
    Label a(Level::kL1);
    for (uint64_t i = 1; i <= 500; ++i) {
      a.Set(H(i), Level::kL3);
    }
    EXPECT_GT(GetLabelMemStats().live_bytes, before);
  }
  EXPECT_EQ(GetLabelMemStats().live_bytes, before);
}

TEST(LabelTest, SmallestLabelIsAboutThreeHundredBytes) {
  // Paper §5.6: "The smallest label is about 300 bytes long, including space
  // for one chunk."
  const Label l({{H(1), Level::kL3}}, Level::kL1);
  EXPECT_GE(l.heap_bytes(), 200u);
  EXPECT_LE(l.heap_bytes(), 450u);
}

TEST(LabelTest, ManyEntriesChunkSplitting) {
  Label l(Level::kL1);
  // Insert out of order to exercise mid-chunk insertion and splitting.
  for (uint64_t i = 1; i <= 1000; ++i) {
    const uint64_t h = (i * 2654435761u) % 100000 + 1;
    l.Set(H(h), Level::kL3);
    if (i % 100 == 0) {
      l.CheckRep();
    }
  }
  l.CheckRep();
  // Every explicit entry reads back.
  for (const auto& [h, level] : l.Entries()) {
    EXPECT_EQ(l.Get(h), level);
  }
}

TEST(LabelTest, EntriesSorted) {
  Label l(Level::kL1);
  for (uint64_t v : {900ULL, 1ULL, 44ULL, 500ULL, 7ULL}) {
    l.Set(H(v), Level::kL3);
  }
  const auto entries = l.Entries();
  ASSERT_EQ(entries.size(), 5u);
  for (size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LT(entries[i - 1].first, entries[i].first);
  }
}

TEST(LabelTest, ToStringFormat) {
  const Label l({{H(5), Level::kStar}, {H(9), Level::kL3}}, Level::kL1);
  EXPECT_EQ(l.ToString(), "{5 *, 9 3, 1}");
  EXPECT_EQ(Label::Top().ToString(), "{3}");
}

TEST(LabelTest, ParseRoundTrip) {
  Label l({{H(5), Level::kStar}, {H(9), Level::kL3}, {H(77), Level::kL0}}, Level::kL2);
  Label parsed;
  ASSERT_TRUE(Label::Parse(l.ToString(), &parsed));
  EXPECT_TRUE(parsed.Equals(l));
}

TEST(LabelTest, ParseRejectsMalformed) {
  Label out;
  EXPECT_FALSE(Label::Parse("", &out));
  EXPECT_FALSE(Label::Parse("{", &out));
  EXPECT_FALSE(Label::Parse("{4}", &out));       // invalid level
  EXPECT_FALSE(Label::Parse("{x 3, 1}", &out));  // bad handle
  EXPECT_FALSE(Label::Parse("{0 3, 1}", &out));  // handle 0 is reserved
  EXPECT_FALSE(Label::Parse("5 3, 1", &out));    // missing braces
  EXPECT_FALSE(Label::Parse("{5 1, 5 2, 3}", &out));  // duplicate handle
  EXPECT_FALSE(Label::Parse("{9 3, 5 2, 3}", &out));  // out of order
  EXPECT_FALSE(Label::Parse("{5 4, 3}", &out));       // no such level name
}

TEST(LabelTest, ParseEdgeCases) {
  Label out;
  // ⋆ default.
  ASSERT_TRUE(Label::Parse("{*}", &out));
  EXPECT_TRUE(out.Equals(Label::Bottom()));
  // Maximum 61-bit handle round-trips; one past it is rejected.
  const Label max_label({{H(Handle::kMaxValue), Level::kL0}}, Level::kStar);
  ASSERT_TRUE(Label::Parse(max_label.ToString(), &out));
  EXPECT_TRUE(out.Equals(max_label));
  out.CheckRep();
  EXPECT_FALSE(Label::Parse("{2305843009213693952 *, 3}", &out));
  EXPECT_FALSE(Label::Parse("{18446744073709551616 *, 3}", &out));
  // Entries written at the default level are degenerate but parseable (they
  // simply vanish, as Set() keeps the rep canonical).
  ASSERT_TRUE(Label::Parse("{5 *, *}", &out));
  EXPECT_TRUE(out.Equals(Label::Bottom()));
  out.CheckRep();
  // Whitespace is tolerated where ToString may not put it.
  ASSERT_TRUE(Label::Parse("{ 5  * , 2 }", &out));
  EXPECT_EQ(out.Get(H(5)), Level::kStar);
  EXPECT_EQ(out.default_level(), Level::kL2);
}

TEST(LabelTest, EqualsIsExtensional) {
  Label a(Level::kL1);
  a.Set(H(5), Level::kL3);
  a.Set(H(5), Level::kL1);  // removed again
  EXPECT_TRUE(a.Equals(Label(Level::kL1)));
  EXPECT_FALSE(a.Equals(Label(Level::kL2)));
}

TEST(LabelTest, LevelHistogramTracksEntries) {
  Label l(Level::kL1);
  l.Set(H(1), Level::kStar);
  l.Set(H(2), Level::kStar);
  l.Set(H(3), Level::kL0);
  l.Set(H(4), Level::kL3);
  EXPECT_EQ(l.CountEntriesAtLevel(Level::kStar), 2u);
  EXPECT_EQ(l.CountEntriesAtLevel(Level::kL0), 1u);
  EXPECT_EQ(l.CountEntriesAtLevel(Level::kL1), 0u) << "default-valued entries don't exist";
  EXPECT_EQ(l.CountEntriesAbove(Level::kStar), 2u);
  EXPECT_EQ(l.CountEntriesAbove(Level::kL2), 1u);
  EXPECT_EQ(l.EntryMinLevel(), Level::kStar);
  EXPECT_EQ(l.EntryMaxLevel(), Level::kL3);
  EXPECT_EQ(l.MinNonStarEntryLevel(), Level::kL0);

  l.Set(H(3), Level::kL1);  // remove
  EXPECT_EQ(l.CountEntriesAtLevel(Level::kL0), 0u);
  EXPECT_EQ(l.MinNonStarEntryLevel(), Level::kL3);
  l.Set(H(4), Level::kL2);  // overwrite
  EXPECT_EQ(l.CountEntriesAtLevel(Level::kL3), 0u);
  EXPECT_EQ(l.CountEntriesAtLevel(Level::kL2), 1u);
  l.CheckRep();
}

TEST(LabelTest, HistogramOnEmptyLabel) {
  const Label l(Level::kL1);
  EXPECT_EQ(l.CountEntriesAbove(Level::kStar), 0u);
  EXPECT_EQ(l.EntryMinLevel(), Level::kL3) << "neutral for ≤ comparisons";
  EXPECT_EQ(l.EntryMaxLevel(), Level::kStar);
  EXPECT_EQ(l.MinNonStarEntryLevel(), Level::kL3);
}

TEST(LabelTest, NonStarIterSkipsStarEntries) {
  Label l(Level::kL1);
  // Many ⋆ entries (whole chunks of them) with a few non-⋆ sprinkled in.
  for (uint64_t i = 1; i <= 300; ++i) {
    l.Set(H(i * 10), Level::kStar);
  }
  l.Set(H(5), Level::kL3);     // before all stars
  l.Set(H(1505), Level::kL0);  // middle of a star run
  l.Set(H(9999), Level::kL2);  // after
  std::vector<std::pair<uint64_t, Level>> seen;
  for (Label::NonStarIter it = l.IterateNonStarEntries(); !it.done(); it.Advance()) {
    seen.emplace_back(it.handle().value(), it.level());
  }
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::pair<uint64_t, Level>{5, Level::kL3}));
  EXPECT_EQ(seen[1], (std::pair<uint64_t, Level>{1505, Level::kL0}));
  EXPECT_EQ(seen[2], (std::pair<uint64_t, Level>{9999, Level::kL2}));
}

TEST(LabelTest, NonStarIterOnAllStarAndEmptyLabels) {
  Label all_star(Level::kL1);
  for (uint64_t i = 1; i <= 100; ++i) {
    all_star.Set(H(i), Level::kStar);
  }
  EXPECT_TRUE(all_star.IterateNonStarEntries().done());
  EXPECT_TRUE(Label(Level::kL2).IterateNonStarEntries().done());
}

TEST(LabelTest, WorkStatsCountOps) {
  ResetLabelWorkStats();
  Label big(Level::kL1);
  for (uint64_t i = 1; i <= 200; ++i) {
    big.Set(H(i * 10), Level::kL3);
  }
  const uint64_t before = GetLabelWorkStats().entries_visited;
  const Label other({{H(15), Level::kL2}}, Level::kL1);
  (void)big.Leq(other);
  EXPECT_GT(GetLabelWorkStats().entries_visited, before)
      << "a non-fast-path comparison must count entry visits";
}

TEST(LabelTest, FastPathSkipsEntryScan) {
  ResetLabelWorkStats();
  Label a(Level::kL1);  // max 1
  Label b(Level::kL2);  // min 2
  const uint64_t visits_before = GetLabelWorkStats().entries_visited;
  EXPECT_TRUE(a.Leq(b));
  EXPECT_EQ(GetLabelWorkStats().entries_visited, visits_before);
  EXPECT_GT(GetLabelWorkStats().fast_path_hits, 0u);
}

// --- LabelBuilder (the bulk unpickle path) ----------------------------------

TEST(LabelBuilderTest, BuildsSameLabelAsSet) {
  LabelBuilder builder(Level::kL1);
  Label expected(Level::kL1);
  // Enough entries to cross several 64-entry chunk boundaries, with level
  // variety so extrema and histogram caches carry information.
  const Level levels[] = {Level::kStar, Level::kL0, Level::kL2, Level::kL3};
  for (uint64_t i = 1; i <= 500; ++i) {
    const Level l = levels[i % 4];
    builder.Append(H(i * 3), l);
    expected.Set(H(i * 3), l);
  }
  EXPECT_EQ(builder.entry_count(), 500u);
  const Label built = builder.Build();
  built.CheckRep();
  EXPECT_TRUE(built.Equals(expected));
  EXPECT_EQ(built.entry_count(), 500u);
  EXPECT_EQ(built.CountEntriesAtLevel(Level::kStar), 125u);
  EXPECT_EQ(built.min_level(), Level::kStar);
  EXPECT_EQ(built.max_level(), Level::kL3);
}

TEST(LabelBuilderTest, EmptyBuildIsDefaultLabel) {
  LabelBuilder builder(Level::kStar);
  const Label built = builder.Build();
  built.CheckRep();
  EXPECT_TRUE(built.Equals(Label::Bottom()));
  EXPECT_EQ(built.entry_count(), 0u);
}

TEST(LabelBuilderTest, BuildResetsForReuse) {
  LabelBuilder builder(Level::kL3);
  builder.Append(H(10), Level::kStar);
  const Label first = builder.Build();
  EXPECT_EQ(builder.entry_count(), 0u);
  // Reuse with a smaller handle than the first batch ever held: the reset
  // must have cleared the monotonicity watermark too.
  builder.Append(H(1), Level::kL0);
  const Label second = builder.Build();
  first.CheckRep();
  second.CheckRep();
  EXPECT_TRUE(first.Equals(Label({{H(10), Level::kStar}}, Level::kL3)));
  EXPECT_TRUE(second.Equals(Label({{H(1), Level::kL0}}, Level::kL3)));
}

TEST(LabelBuilderTest, BuiltLabelsInteroperateWithAlgebra) {
  LabelBuilder builder(Level::kStar);
  for (uint64_t i = 1; i <= 100; ++i) {
    builder.Append(H(i), Level::kL3);
  }
  Label built = builder.Build();
  const Label other({{H(50), Level::kL3}, {H(200), Level::kL2}}, Level::kStar);
  EXPECT_TRUE(other.Leq(built) == false);
  Label joined = Label::Lub(built, other);
  joined.CheckRep();
  EXPECT_EQ(joined.Get(H(200)), Level::kL2);
  EXPECT_EQ(joined.Get(H(50)), Level::kL3);
  // Mutation after bulk construction goes through the normal COW path.
  built.Set(H(1000), Level::kL0);
  built.CheckRep();
  EXPECT_EQ(built.Get(H(1000)), Level::kL0);
}

}  // namespace
}  // namespace asbestos
