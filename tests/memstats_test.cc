// Kernel memory accounting: the bookkeeping behind Figure 6. Object
// lifecycles must balance — what a process/EP/port/label allocates must
// disappear when it dies — and the report must attribute bytes to the right
// category.
#include <gtest/gtest.h>

#include "src/kernel/kernel.h"
#include "tests/test_util.h"

namespace asbestos {
namespace {

using testing::ScriptedProcess;

TEST(MemStatsTest, ProcessLifecycleBalances) {
  Kernel kernel(11);
  const uint64_t before = kernel.MemReport().total_bytes();
  SpawnArgs args;
  args.name = "ephemeral";
  const ProcessId pid = kernel.CreateProcess(std::make_unique<ScriptedProcess>(), args);
  kernel.WithProcessContext(pid, [&](ProcessContext& ctx) {
    ctx.NewHandle();
    const Handle p = ctx.NewPort(Label::Top());
    (void)p;
    const uint64_t addr = ctx.AllocPages(2);
    ctx.WriteMem(addr, "data", 4);
    ctx.ModelHeapBytes(1000);
  });
  EXPECT_GT(kernel.MemReport().total_bytes(), before);
  kernel.WithProcessContext(pid, [&](ProcessContext& ctx) { ctx.Exit(); });
  const KernelMemReport after = kernel.MemReport();
  EXPECT_EQ(after.process_bytes, 0u);
  EXPECT_EQ(after.modeled_heap_bytes, 0u);
  EXPECT_EQ(after.page_bytes, 0u) << "simulated pages die with the address space";
  // The plain (non-port) handle's vnode survives: compartments outlive their
  // creators (labels elsewhere may still reference the handle).
  EXPECT_EQ(after.vnode_bytes, kVnodeBytes);
}

TEST(MemStatsTest, EventProcessLifecycleBalances) {
  Kernel kernel(12);
  Handle service;
  SpawnArgs args;
  args.name = "worker";
  kernel.CreateProcess(
      std::make_unique<ScriptedProcess>(
          [&](ProcessContext& ctx) {
            service = ctx.NewPort(Label::Top());
            ASB_ASSERT(ctx.SetPortLabel(service, Label::Top()) == Status::kOk);
            ctx.EnterEventRealm();
          },
          [&](ProcessContext& ctx, const Message& msg) {
            if (msg.type == 1) {
              ctx.EpExit();
              return;
            }
            ctx.WriteMem(0x50000, "session", 7);  // one private page
          }),
      args);
  SpawnArgs dargs;
  dargs.name = "driver";
  const ProcessId driver = kernel.CreateProcess(std::make_unique<ScriptedProcess>(), dargs);

  const uint64_t before = kernel.MemReport().total_bytes();
  kernel.WithProcessContext(driver, [&](ProcessContext& ctx) {
    ASSERT_EQ(ctx.Send(service, Message()), Status::kOk);
  });
  kernel.RunUntilIdle();
  const KernelMemReport with_ep = kernel.MemReport();
  EXPECT_EQ(with_ep.ep_bytes, kEpKernelBytes);
  EXPECT_GE(with_ep.page_bytes, kPageSize) << "the EP's private page is real";
  EXPECT_GT(with_ep.total_bytes(), before);

  // Kill the EP via its own port.
  Process* worker = kernel.FindProcessByName("worker");
  ASSERT_NE(worker, nullptr);
  ASSERT_EQ(worker->eps.size(), 1u);
  // Address the EP through the service port again? The EP owns no port here;
  // a second base-port message would fork a new EP. Send the exit request to
  // the same EP is impossible without its port, so exit the whole process.
  kernel.WithProcessContext(worker->id, [&](ProcessContext& ctx) { ctx.Exit(); });
  const KernelMemReport after = kernel.MemReport();
  EXPECT_EQ(after.ep_bytes, 0u);
  EXPECT_EQ(after.page_bytes, 0u);
  EXPECT_EQ(after.queue_arena_bytes, 0u);
}

TEST(MemStatsTest, QueueBytesTrackPendingMessages) {
  Kernel kernel(13);
  std::vector<testing::RecorderProcess::Received> got;
  SpawnArgs rargs;
  rargs.name = "rx";
  const ProcessId rx = kernel.CreateProcess(
      std::make_unique<testing::RecorderProcess>(&got), rargs);
  Handle port;
  kernel.WithProcessContext(rx, [&](ProcessContext& ctx) {
    port = ctx.NewPort(Label::Top());
    ASSERT_EQ(ctx.SetPortLabel(port, Label::Top()), Status::kOk);
  });
  SpawnArgs sargs;
  sargs.name = "tx";
  const ProcessId tx = kernel.CreateProcess(std::make_unique<ScriptedProcess>(), sargs);
  const uint64_t before = kernel.MemReport().queue_bytes;
  kernel.WithProcessContext(tx, [&](ProcessContext& ctx) {
    Message m;
    m.data = std::string(1000, 'x');
    ASSERT_EQ(ctx.Send(port, std::move(m)), Status::kOk);
  });
  const uint64_t queued = kernel.MemReport().queue_bytes;
  EXPECT_GE(queued - before, 1000u);
  kernel.RunUntilIdle();
  EXPECT_EQ(kernel.MemReport().queue_bytes, before) << "delivery drains the queue bytes";
}

TEST(MemStatsTest, QueueBytesCountFanOutPayloadBufferOnce) {
  // A 1→K fan-out of one Payload sits in K queues but is one buffer in
  // memory; queue_bytes charges the per-message envelope K times and the
  // payload buffer exactly once (see Kernel::AddQueueAccounting).
  constexpr size_t kFanOut = 4;
  constexpr size_t kBodyBytes = 4096;
  Kernel kernel(14);
  std::vector<testing::RecorderProcess::Received> got;
  SpawnArgs rargs;
  rargs.name = "rx";
  const ProcessId rx = kernel.CreateProcess(
      std::make_unique<testing::RecorderProcess>(&got), rargs);
  std::vector<Handle> ports;
  kernel.WithProcessContext(rx, [&](ProcessContext& ctx) {
    for (size_t k = 0; k < kFanOut; ++k) {
      const Handle p = ctx.NewPort(Label::Top());
      ASSERT_EQ(ctx.SetPortLabel(p, Label::Top()), Status::kOk);
      ports.push_back(p);
    }
  });
  SpawnArgs sargs;
  sargs.name = "tx";
  const ProcessId tx = kernel.CreateProcess(std::make_unique<ScriptedProcess>(), sargs);
  const uint64_t before = kernel.MemReport().queue_bytes;
  const Payload body(std::string(kBodyBytes, 'x'));
  kernel.WithProcessContext(tx, [&](ProcessContext& ctx) {
    for (const Handle p : ports) {
      Message m;
      m.data = body;  // refcount share: K queue entries, one buffer
      ASSERT_EQ(ctx.Send(p, std::move(m)), Status::kOk);
    }
  });
  const uint64_t queued = kernel.MemReport().queue_bytes - before;
  EXPECT_EQ(queued, kFanOut * kQueuedMessageOverheadBytes + kBodyBytes)
      << "K envelopes, ONE payload buffer";
  kernel.RunUntilIdle();
  EXPECT_EQ(got.size(), kFanOut);
  EXPECT_EQ(kernel.MemReport().queue_bytes, before) << "delivery drains every entry";
}

TEST(MemStatsTest, PeakTracksHighWaterMark) {
  Kernel kernel(14);
  SpawnArgs args;
  args.name = "spiky";
  const ProcessId pid = kernel.CreateProcess(std::make_unique<ScriptedProcess>(), args);
  kernel.ResetPeakTotalBytes();
  const uint64_t baseline = kernel.peak_total_bytes();
  kernel.WithProcessContext(pid, [&](ProcessContext& ctx) {
    const uint64_t addr = ctx.AllocPages(8);
    for (int i = 0; i < 8; ++i) {
      ctx.WriteMem(addr + static_cast<uint64_t>(i) * kPageSize, "x", 1);
    }
    ctx.ModelHeapBytes(50000);
    ctx.ModelHeapBytes(-50000);
    ctx.FreePages(addr, 8);
  });
  EXPECT_GE(kernel.peak_total_bytes(), baseline + 8 * kPageSize + 50000)
      << "the peak must remember the spike after it subsides";
  EXPECT_LT(kernel.MemReport().total_bytes(), kernel.peak_total_bytes());
}

TEST(MemStatsTest, LabelBytesAreLive) {
  Kernel kernel(15);
  const uint64_t before = kernel.MemReport().label_bytes;
  SpawnArgs args;
  args.name = "labeled";
  const ProcessId pid = kernel.CreateProcess(std::make_unique<ScriptedProcess>(), args);
  kernel.WithProcessContext(pid, [&](ProcessContext& ctx) {
    for (int i = 0; i < 200; ++i) {
      ctx.NewHandle();  // each adds a ⋆ entry to the send label
    }
  });
  EXPECT_GT(kernel.MemReport().label_bytes, before);
  kernel.WithProcessContext(pid, [&](ProcessContext& ctx) { ctx.Exit(); });
  // The process's labels are gone; factory-default labels may remain live
  // elsewhere, so compare against the entry-laden level, not exact equality.
  EXPECT_LT(kernel.MemReport().label_bytes, before + 400);
}

// --- Million-compartment scale: accounting invariants ----------------------

// total_bytes() must be exactly the sum of every constituent field (and
// nothing else) in BOTH accounting modes — a new field that forgets to join
// the sum, or a field double-counted across modes, breaks the Figure-6 and
// bench_scale numbers silently.
TEST(MemStatsTest, TotalBytesIsExactlyTheSumOfItsFields) {
  for (const bool scale : {false, true}) {
    SetScaleAccountingEnabled(scale);
    Kernel kernel(scale ? 31 : 30);
    SpawnArgs args;
    args.name = "holder";
    const ProcessId pid = kernel.CreateProcess(std::make_unique<ScriptedProcess>(), args);
    kernel.WithProcessContext(pid, [&](ProcessContext& ctx) {
      ctx.NewHandle();  // plain handles: dense slot (scale) vs full vnode
      ctx.NewHandle();
      const Handle port = ctx.NewPort(Label::Top());
      ASB_ASSERT(ctx.SetPortLabel(port, Label::Top()) == Status::kOk);
      ctx.AllocPages(1);
      ctx.ModelHeapBytes(512);
    });

    const KernelMemReport r = kernel.MemReport();
    const uint64_t sum = r.vnode_bytes + r.process_bytes + r.ep_bytes + r.label_bytes +
                         r.label_intern_index_bytes + r.page_bytes + r.overlay_slot_bytes +
                         r.queue_bytes + r.queue_arena_bytes + r.modeled_heap_bytes +
                         r.store_bytes + r.session_bytes + r.binding_bytes +
                         r.handle_table_bytes;
    EXPECT_EQ(r.total_bytes(), sum)
        << (scale ? "scale" : "paper") << " accounting mode";
    if (scale) {
      EXPECT_EQ(r.handle_table_bytes, 2 * kHandleTableEntryBytes)
          << "plain handles must be charged as dense slots";
    } else {
      EXPECT_EQ(r.handle_table_bytes, 0u);
      EXPECT_EQ(r.binding_bytes, 0u);
    }
    SetScaleAccountingEnabled(false);
  }
}

// Dedup savings are informational (bytes never allocated): cumulative,
// monotone, and excluded from total_bytes().
TEST(MemStatsTest, DedupSavedBytesAreMonotoneAndOutsideTheTotal) {
  Kernel kernel(32);
  SpawnArgs args;
  args.name = "deduper";
  const ProcessId pid = kernel.CreateProcess(std::make_unique<ScriptedProcess>(), args);
  const uint64_t saved0 = kernel.MemReport().label_dedup_saved_bytes;
  kernel.WithProcessContext(pid, [&](ProcessContext& ctx) {
    // Two independently built, extensionally equal labels: canonicalizing
    // the second must be a dedup hit against the first's live rep (sharing
    // one Label object would be a mere refcount bump, not a dedup).
    const Handle tag = ctx.NewHandle();
    Label first = Label::Top();
    first.Set(tag, Level::kL1);
    first.Canonicalize();
    Label second = Label::Top();
    second.Set(tag, Level::kL1);
    second.Canonicalize();
    ASB_ASSERT(first.rep_id() == second.rep_id());
    const Handle p1 = ctx.NewPort(first);
    (void)p1;
  });
  const KernelMemReport r1 = kernel.MemReport();
  EXPECT_GT(r1.label_dedup_saved_bytes, saved0) << "identical labels must dedup";

  // Saved bytes never shrink, even as live labels are torn down.
  kernel.WithProcessContext(pid, [&](ProcessContext& ctx) { ctx.Exit(); });
  const KernelMemReport r2 = kernel.MemReport();
  EXPECT_GE(r2.label_dedup_saved_bytes, r1.label_dedup_saved_bytes);

  // And they are not part of the live total: the sum of constituents (which
  // omits the saved counter) still reproduces total_bytes() exactly.
  const uint64_t sum = r2.vnode_bytes + r2.process_bytes + r2.ep_bytes + r2.label_bytes +
                       r2.label_intern_index_bytes + r2.page_bytes + r2.overlay_slot_bytes +
                       r2.queue_bytes + r2.queue_arena_bytes + r2.modeled_heap_bytes +
                       r2.store_bytes + r2.session_bytes + r2.binding_bytes +
                       r2.handle_table_bytes;
  EXPECT_EQ(r2.total_bytes(), sum);
}

}  // namespace
}  // namespace asbestos
