#include <gtest/gtest.h>

#include "src/db/sql_engine.h"
#include "src/db/sql_parser.h"
#include "src/db/sql_tokenizer.h"

namespace asbestos {
namespace {

// --- Tokenizer ---------------------------------------------------------------

TEST(SqlTokenizerTest, Basics) {
  auto tokens = TokenizeSql("SELECT a, b FROM t WHERE x = 'it''s' AND y >= -5");
  ASSERT_TRUE(tokens.ok());
  const auto& t = tokens.value();
  EXPECT_TRUE(t[0].IsKeyword("SELECT"));
  EXPECT_TRUE(t[1].IsKeyword("A")) << "identifiers are uppercased";
  EXPECT_TRUE(t[2].IsSymbol(","));
  bool found_string = false;
  for (const auto& tok : t) {
    if (tok.kind == SqlToken::Kind::kString) {
      EXPECT_EQ(tok.text, "it's");
      found_string = true;
    }
  }
  EXPECT_TRUE(found_string);
}

TEST(SqlTokenizerTest, RejectsUnterminatedString) {
  EXPECT_FALSE(TokenizeSql("SELECT 'oops").ok());
}

TEST(SqlTokenizerTest, RejectsUnknownSymbol) { EXPECT_FALSE(TokenizeSql("SELECT @x").ok()); }

TEST(SqlTokenizerTest, TwoCharOperators) {
  auto tokens = TokenizeSql("a != b <= c >= d <> e");
  ASSERT_TRUE(tokens.ok());
  int ops = 0;
  for (const auto& t : tokens.value()) {
    if (t.IsSymbol("!=") || t.IsSymbol("<=") || t.IsSymbol(">=")) {
      ++ops;
    }
  }
  EXPECT_EQ(ops, 4) << "<> normalizes to !=";
}

// --- Parser -----------------------------------------------------------------

TEST(SqlParserTest, CreateTable) {
  auto stmt = ParseSql("CREATE TABLE users (name TEXT PRIMARY KEY, age INTEGER)");
  ASSERT_TRUE(stmt.ok());
  const auto& create = std::get<CreateTableStmt>(stmt.value());
  EXPECT_EQ(create.table, "USERS");
  ASSERT_EQ(create.columns.size(), 2u);
  EXPECT_TRUE(create.columns[0].primary_key);
  EXPECT_EQ(create.columns[1].type, SqlType::kInteger);
}

TEST(SqlParserTest, SelectWithEverything) {
  auto stmt =
      ParseSql("SELECT a, b FROM t WHERE x = 1 AND y != 'q' ORDER BY a DESC LIMIT 10");
  ASSERT_TRUE(stmt.ok());
  const auto& sel = std::get<SelectStmt>(stmt.value());
  EXPECT_EQ(sel.columns.size(), 2u);
  EXPECT_EQ(sel.where.size(), 2u);
  EXPECT_EQ(sel.order_by, "A");
  EXPECT_TRUE(sel.order_desc);
  EXPECT_EQ(sel.limit, 10);
}

TEST(SqlParserTest, InsertMultiRow) {
  auto stmt = ParseSql("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
  ASSERT_TRUE(stmt.ok());
  const auto& ins = std::get<InsertStmt>(stmt.value());
  EXPECT_EQ(ins.rows.size(), 2u);
}

TEST(SqlParserTest, RejectsMalformed) {
  EXPECT_FALSE(ParseSql("").ok());
  EXPECT_FALSE(ParseSql("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSql("INSERT INTO t (a) VALUES (1, 2)").ok()) << "arity mismatch";
  EXPECT_FALSE(ParseSql("CREATE TABLE t ()").ok());
  EXPECT_FALSE(ParseSql("DROP TABLE t").ok()) << "unsupported statement";
  EXPECT_FALSE(ParseSql("SELECT a FROM t WHERE x LIKE 'y'").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM t LIMIT -1").ok());
}

// --- Engine ------------------------------------------------------------------

class SqlEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Execute("CREATE TABLE t (name TEXT, score INTEGER)").ok());
    ASSERT_TRUE(db_.Execute("INSERT INTO t (name, score) VALUES "
                            "('alice', 10), ('bob', 20), ('carol', 30), ('bob', 25)")
                    .ok());
  }
  SqlDatabase db_;
};

TEST_F(SqlEngineTest, SelectAll) {
  auto r = db_.Execute("SELECT * FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 4u);
  EXPECT_EQ(r->columns.size(), 2u);
}

TEST_F(SqlEngineTest, SelectWhereEquality) {
  auto r = db_.Execute("SELECT score FROM t WHERE name = 'bob'");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0][0].AsInt(), 20);
  EXPECT_EQ(r->rows[1][0].AsInt(), 25);
}

TEST_F(SqlEngineTest, SelectComparisons) {
  EXPECT_EQ(db_.Execute("SELECT name FROM t WHERE score > 20")->rows.size(), 2u);
  EXPECT_EQ(db_.Execute("SELECT name FROM t WHERE score >= 20")->rows.size(), 3u);
  EXPECT_EQ(db_.Execute("SELECT name FROM t WHERE score < 20")->rows.size(), 1u);
  EXPECT_EQ(db_.Execute("SELECT name FROM t WHERE score != 10")->rows.size(), 3u);
  EXPECT_EQ(db_.Execute("SELECT name FROM t WHERE score > 10 AND score < 30")->rows.size(),
            2u);
}

TEST_F(SqlEngineTest, OrderByAndLimit) {
  auto r = db_.Execute("SELECT name FROM t ORDER BY score DESC LIMIT 2");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0][0].AsText(), "carol");
  EXPECT_EQ(r->rows[1][0].AsText(), "bob");
}

TEST_F(SqlEngineTest, Update) {
  auto r = db_.Execute("UPDATE t SET score = 99 WHERE name = 'alice'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows_affected, 1u);
  EXPECT_EQ(db_.Execute("SELECT score FROM t WHERE name = 'alice'")->rows[0][0].AsInt(), 99);
}

TEST_F(SqlEngineTest, Delete) {
  auto r = db_.Execute("DELETE FROM t WHERE name = 'bob'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows_affected, 2u);
  EXPECT_EQ(db_.Execute("SELECT * FROM t")->rows.size(), 2u);
}

TEST_F(SqlEngineTest, FullScanCountsEveryRow) {
  auto r = db_.Execute("SELECT * FROM t WHERE score = 20");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows_visited, 4u) << "no index: the executor touches every row";
}

TEST_F(SqlEngineTest, IndexNarrowsScan) {
  ASSERT_TRUE(db_.Execute("CREATE INDEX byname ON t (name)").ok());
  auto r = db_.Execute("SELECT score FROM t WHERE name = 'bob'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows_visited, 2u) << "index probe touches only matching rows";
  EXPECT_EQ(r->index_probes, 1u);
}

TEST_F(SqlEngineTest, IndexMaintainedAcrossMutations) {
  ASSERT_TRUE(db_.Execute("CREATE INDEX byname ON t (name)").ok());
  ASSERT_TRUE(db_.Execute("UPDATE t SET name = 'bobby' WHERE score = 20").ok());
  EXPECT_EQ(db_.Execute("SELECT * FROM t WHERE name = 'bob'")->rows.size(), 1u);
  EXPECT_EQ(db_.Execute("SELECT * FROM t WHERE name = 'bobby'")->rows.size(), 1u);
  ASSERT_TRUE(db_.Execute("DELETE FROM t WHERE name = 'bobby'").ok());
  EXPECT_EQ(db_.Execute("SELECT * FROM t WHERE name = 'bobby'")->rows.size(), 0u);
}

TEST_F(SqlEngineTest, PrimaryKeyUniqueness) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE pk (id INTEGER PRIMARY KEY, v TEXT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO pk (id, v) VALUES (1, 'a')").ok());
  auto dup = db_.Execute("INSERT INTO pk (id, v) VALUES (1, 'b')");
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.status(), Status::kAlreadyExists);
}

TEST_F(SqlEngineTest, ErrorsOnUnknownNames) {
  EXPECT_EQ(db_.Execute("SELECT * FROM missing").status(), Status::kNotFound);
  EXPECT_EQ(db_.Execute("SELECT nope FROM t").status(), Status::kNotFound);
  EXPECT_EQ(db_.Execute("INSERT INTO t (bogus) VALUES (1)").status(), Status::kNotFound);
  EXPECT_EQ(db_.Execute("SELECT * FROM t WHERE bogus = 1").status(), Status::kNotFound);
}

TEST_F(SqlEngineTest, NullHandling) {
  ASSERT_TRUE(db_.Execute("INSERT INTO t (name, score) VALUES ('dave', NULL)").ok());
  auto r = db_.Execute("SELECT score FROM t WHERE name = 'dave'");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows[0][0].is_null());
}

TEST(SqlValueTest, CompareSemantics) {
  EXPECT_EQ(SqlValue(int64_t{5}).Compare(SqlValue(int64_t{5})), 0);
  EXPECT_LT(SqlValue(int64_t{-1}).Compare(SqlValue(int64_t{1})), 0);
  EXPECT_EQ(SqlValue(std::string("a")).Compare(SqlValue(std::string("a"))), 0);
  EXPECT_LT(SqlValue().Compare(SqlValue(int64_t{0})), 0) << "NULL orders first";
  EXPECT_EQ(SqlValue().Compare(SqlValue()), 0);
}

TEST(SqlValueTest, Literals) {
  EXPECT_EQ(SqlValue(int64_t{-3}).ToLiteral(), "-3");
  EXPECT_EQ(SqlValue(std::string("it's")).ToLiteral(), "'it''s'");
  EXPECT_EQ(SqlValue().ToLiteral(), "NULL");
}

}  // namespace
}  // namespace asbestos
