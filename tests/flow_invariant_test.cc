// Randomized end-to-end information-flow soundness.
//
// A "secret" compartment is introduced by one owner process; a population of
// forwarders then shuffles messages around a random topology for many
// rounds. Each message carries ground-truth provenance ("did the sender know
// the secret when it sent this?") maintained by the test harness in plain
// C++ state, completely outside the label system. After the storm, the
// kernel's taint state must coincide *exactly* with the ground truth:
//
//   knows-secret (ground truth)  ⟺  send label carries secret at 3 (or ⋆)
//
// ⇒ soundness: no process learned the secret without being tainted (no leak
//   path exists, including through processes ignorant of the policy — the
//   paper's transitivity claim in §2);
// ⇐ precision: no process was tainted without actually receiving
//   secret-derived data (dropped messages have no effect).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/base/rng.h"
#include "src/kernel/kernel.h"

namespace asbestos {
namespace {

struct Node;

struct World {
  std::vector<Node*> nodes;
  std::vector<Handle> ports;
  Rng* rng = nullptr;
  Handle secret;
};

struct Node {
  int index = 0;
  ProcessId pid = kNoProcess;
  bool knows_secret = false;  // ground truth, maintained outside labels
  bool declassifies = false;  // the ⋆-holder: its plain sends are sanitized
  World* world = nullptr;
};

class Forwarder : public ProcessCode {
 public:
  explicit Forwarder(Node* node) : node_(node) {}

  void HandleMessage(ProcessContext& ctx, const Message& msg) override {
    // Ground truth: receiving provenance-marked data makes us a knower.
    if (!msg.words.empty() && msg.words[0] == 1) {
      node_->knows_secret = true;
    }
    // Forward to 0-2 random peers; the message carries our CURRENT ground
    // truth. The kernel's labels ride along implicitly. A ⋆-holder's plain
    // sends are *declassification* (§5.3): it chooses what leaves the
    // compartment, so its forwards carry no protected provenance.
    World& w = *node_->world;
    const uint64_t fanout = w.rng->NextBelow(3);
    for (uint64_t i = 0; i < fanout; ++i) {
      const size_t target = w.rng->NextBelow(w.ports.size());
      Message fwd;
      fwd.words = {(node_->knows_secret && !node_->declassifies) ? 1ULL : 0ULL};
      (void)ctx.Send(w.ports[target], std::move(fwd));
    }
  }

 private:
  Node* node_;
};

class FlowInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FlowInvariantTest, TaintStateMatchesGroundTruthExactly) {
  Rng rng(GetParam());
  Kernel kernel(GetParam() * 2654435761ULL + 17);
  World world;
  world.rng = &rng;

  constexpr int kNodes = 24;
  std::vector<std::unique_ptr<Node>> storage;
  for (int i = 0; i < kNodes; ++i) {
    auto node = std::make_unique<Node>();
    node->index = i;
    node->world = &world;
    SpawnArgs args;
    args.name = "node";
    // Roughly half the population is cleared for the (yet to be minted)
    // secret; clearance labels get fixed up after the owner mints it.
    args.recv_label = Label::DefaultReceive();
    node->pid = kernel.CreateProcess(std::make_unique<Forwarder>(node.get()), args);
    world.nodes.push_back(node.get());
    storage.push_back(std::move(node));
  }
  // Every node opens a public port.
  for (Node* node : world.nodes) {
    kernel.WithProcessContext(node->pid, [&](ProcessContext& ctx) {
      const Handle port = ctx.NewPort(Label::Top());
      ASSERT_EQ(ctx.SetPortLabel(port, Label::Top()), Status::kOk);
      world.ports.push_back(port);
    });
  }

  // Node 0 is the owner: it mints the secret (holding ⋆) and clears a random
  // subset of peers for it.
  Node* owner = world.nodes[0];
  owner->knows_secret = true;
  owner->declassifies = true;
  kernel.WithProcessContext(owner->pid, [&](ProcessContext& ctx) {
    world.secret = ctx.NewHandle();
  });
  std::vector<bool> cleared(kNodes, false);
  for (int i = 1; i < kNodes; ++i) {
    if (rng.NextBool()) {
      cleared[static_cast<size_t>(i)] = true;
      kernel.WithProcessContext(owner->pid, [&](ProcessContext& ctx) {
        Message grant;
        grant.words = {0};
        SendArgs args;
        args.decont_receive = Label({{world.secret, Level::kL3}}, Level::kStar);
        ASSERT_EQ(ctx.Send(world.ports[static_cast<size_t>(i)], std::move(grant), args),
                  Status::kOk);
      });
    }
  }
  kernel.RunUntilIdle();

  // The storm: the owner repeatedly injects secret-tainted messages at
  // random peers; everything else is random forwarding, handled by the
  // Forwarder code above as deliveries cascade.
  for (int round = 0; round < 40; ++round) {
    kernel.WithProcessContext(owner->pid, [&](ProcessContext& ctx) {
      const size_t target = rng.NextBelow(world.ports.size());
      Message m;
      m.words = {1};  // ground truth: this data derives from the secret
      SendArgs args;
      args.contaminate = Label({{world.secret, Level::kL3}}, Level::kStar);
      (void)ctx.Send(world.ports[target], std::move(m), args);
    });
    kernel.RunUntilIdle();
  }

  // The reckoning: ground truth versus kernel labels, both directions.
  int knowers = 0;
  for (Node* node : world.nodes) {
    const Level level = kernel.SendLabelOf(node->pid).Get(world.secret);
    if (node == owner) {
      EXPECT_EQ(level, Level::kStar) << "the owner keeps its ⋆";
      continue;
    }
    if (node->knows_secret) {
      ++knowers;
      EXPECT_EQ(level, Level::kL3)
          << "node " << node->index << " learned the secret but is not tainted: LEAK";
      EXPECT_TRUE(cleared[static_cast<size_t>(node->index)])
          << "an uncleared node must never have received secret data";
    } else {
      EXPECT_EQ(level, kDefaultSendLevel)
          << "node " << node->index << " is tainted without having seen secret data";
    }
  }
  // Sanity: the storm actually spread the secret somewhere.
  EXPECT_GT(knowers, 0);
  // And the kernel visibly dropped cross-clearance traffic.
  EXPECT_GT(kernel.stats().drops_label_check, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowInvariantTest,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 5ULL, 8ULL, 13ULL, 21ULL,
                                           34ULL, 55ULL, 89ULL));

}  // namespace
}  // namespace asbestos
