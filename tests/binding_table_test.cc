// Flat interned per-user binding table (src/db/binding_table.h): lookup
// correctness across the two-level sorted indexes, update-in-place
// semantics, lazy id-index rebuilds, and global byte accounting.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/db/binding_table.h"
#include "src/kernel/memstats.h"

namespace asbestos {
namespace {

BindingTable::Entry MakeEntry(uint64_t taint, uint64_t grant, int64_t uid) {
  BindingTable::Entry e;
  e.taint = Handle::FromValue(taint);
  e.grant = Handle::FromValue(grant);
  e.user_id = uid;
  return e;
}

TEST(BindingTableTest, PutFindRoundTrip) {
  BindingTable table;
  table.Put("alice", MakeEntry(0x100, 0x101, 7));
  table.Put("bob", MakeEntry(0x200, 0x201, 8));

  const BindingTable::Entry* a = table.Find("alice");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->taint.value(), 0x100u);
  EXPECT_EQ(a->grant.value(), 0x101u);
  EXPECT_EQ(a->user_id, 7);

  const BindingTable::Entry* b = table.Find("bob");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->taint.value(), 0x200u);

  EXPECT_EQ(table.Find("carol"), nullptr);
  EXPECT_EQ(table.Find(""), nullptr);
  EXPECT_EQ(table.size(), 2u);
}

TEST(BindingTableTest, AuxPayloadStoredAndUpdated) {
  BindingTable table;
  table.Put("alice", MakeEntry(1, 2, 3), "pw-a");
  EXPECT_EQ(table.AuxOf("alice"), "pw-a");
  EXPECT_EQ(table.AuxOf("missing"), "");

  EXPECT_TRUE(table.SetAux("alice", "pw-new"));
  EXPECT_EQ(table.AuxOf("alice"), "pw-new");
  EXPECT_FALSE(table.SetAux("missing", "x"));

  // The entry itself is untouched by an aux update.
  const BindingTable::Entry* a = table.Find("alice");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->user_id, 3);
}

TEST(BindingTableTest, PutSameNameUpdatesInPlace) {
  BindingTable table;
  table.Put("alice", MakeEntry(1, 2, 3), "old");
  table.Put("alice", MakeEntry(9, 10, 11), "new");
  EXPECT_EQ(table.size(), 1u) << "an update must not grow the table";

  const BindingTable::Entry* a = table.Find("alice");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->taint.value(), 9u);
  EXPECT_EQ(a->grant.value(), 10u);
  EXPECT_EQ(a->user_id, 11);
  EXPECT_EQ(table.AuxOf("alice"), "new");
}

TEST(BindingTableTest, FindByIdFollowsInPlaceRewrites) {
  BindingTable table;
  table.Put("alice", MakeEntry(1, 2, 100));
  table.Put("bob", MakeEntry(3, 4, 200));
  ASSERT_NE(table.FindById(100), nullptr);
  EXPECT_EQ(table.FindById(100)->taint.value(), 1u);

  // Rewriting alice's user_id dirties the id index; the next FindById must
  // see the new id and forget the old one (lazy rebuild).
  table.Put("alice", MakeEntry(1, 2, 300));
  EXPECT_EQ(table.FindById(100), nullptr);
  const BindingTable::Entry* a = table.FindById(300);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->taint.value(), 1u);
  ASSERT_NE(table.FindById(200), nullptr) << "bob is undisturbed";
}

TEST(BindingTableTest, ScalesPastTailMergesInInsertionOrder) {
  // Enough entries to force several tail→base merges (tail cap starts at
  // 64), inserted in an order that is neither sorted nor reverse-sorted.
  constexpr int kUsers = 500;
  BindingTable table;
  std::vector<std::string> names;
  names.reserve(kUsers);
  for (int i = 0; i < kUsers; ++i) {
    const int scrambled = (i * 7919) % kUsers;  // prime stride permutation
    char buf[32];
    std::snprintf(buf, sizeof(buf), "user%06d", scrambled);
    names.emplace_back(buf);
    table.Put(names.back(), MakeEntry(0x1000 + scrambled, 0x2000 + scrambled, scrambled + 1));
  }
  EXPECT_EQ(table.size(), static_cast<size_t>(kUsers));

  for (int i = 0; i < kUsers; ++i) {
    const BindingTable::Entry* e = table.Find(names[i]);
    ASSERT_NE(e, nullptr) << names[i];
    const int scrambled = (i * 7919) % kUsers;
    EXPECT_EQ(e->user_id, scrambled + 1);
    ASSERT_NE(table.FindById(scrambled + 1), nullptr);
  }

  // ForEach walks insertion order, not index order.
  size_t seen = 0;
  table.ForEach([&](std::string_view name, const BindingTable::Entry& e, std::string_view aux) {
    ASSERT_LT(seen, names.size());
    EXPECT_EQ(name, names[seen]);
    EXPECT_EQ(e.taint.value(), 0x1000u + (seen * 7919) % kUsers);
    EXPECT_EQ(aux, "");
    ++seen;
  });
  EXPECT_EQ(seen, static_cast<size_t>(kUsers));
}

TEST(BindingTableTest, GlobalAccountingBalancesAcrossLifetime) {
  const BindingMemStats before = GetBindingMemStats();
  {
    BindingTable table;
    table.Put("alice", MakeEntry(1, 2, 3), "pw-a");
    table.Put("bob", MakeEntry(4, 5, 6), "pw-b");
    const BindingMemStats mid = GetBindingMemStats();
    EXPECT_EQ(mid.live_entries, before.live_entries + 2);
    EXPECT_GT(mid.live_bytes, before.live_bytes);
    EXPECT_EQ(static_cast<uint64_t>(mid.live_bytes - before.live_bytes), table.table_bytes());
  }
  // Destructor restitution: the ledger returns exactly to its prior state.
  const BindingMemStats after = GetBindingMemStats();
  EXPECT_EQ(after.live_entries, before.live_entries);
  EXPECT_EQ(after.live_bytes, before.live_bytes);
}

}  // namespace
}  // namespace asbestos
