// Property tests for the kernel's fused label-rule evaluation: the fast
// paths (extrema pruning, histogram wholesale tests, asymmetric
// small-vs-huge shapes) must agree exactly with the naive materialized
// algebra on every input, including adversarially shaped ones.
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/kernel/label_checks.h"

namespace asbestos {
namespace {

class LabelChecksPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override { rng_ = std::make_unique<Rng>(GetParam()); }

  Level RandomLevel() { return static_cast<Level>(rng_->NextBelow(5)); }

  // Labels draw handles from a shared pool so overlaps are common.
  Label RandomLabel(uint64_t max_entries, uint64_t pool = 60) {
    Label l(RandomLevel());
    const uint64_t n = rng_->NextBelow(max_entries + 1);
    for (uint64_t i = 0; i < n; ++i) {
      l.Set(Handle::FromValue(rng_->NextInRange(1, pool)), RandomLevel());
    }
    return l;
  }

  // A huge label shaped like the OKWS system labels: mostly one level, a few
  // exceptions, drawn from a disjoint high handle range plus the shared pool.
  Label HugeLabel(Level bulk_level) {
    Label l(RandomLevel());
    const uint64_t n = 400 + rng_->NextBelow(600);
    for (uint64_t i = 0; i < n; ++i) {
      l.Set(Handle::FromValue(1000 + i * 3), bulk_level);
    }
    // A few overlapping and off-level entries.
    for (int i = 0; i < 6; ++i) {
      l.Set(Handle::FromValue(rng_->NextInRange(1, 60)), RandomLevel());
    }
    for (int i = 0; i < 3; ++i) {
      l.Set(Handle::FromValue(1000 + rng_->NextBelow(600) * 3), RandomLevel());
    }
    return l;
  }

  std::unique_ptr<Rng> rng_;
};

TEST_P(LabelChecksPropertyTest, DeliveryCheckMatchesNaiveSmall) {
  for (int t = 0; t < 150; ++t) {
    const Label es = RandomLabel(10);
    const Label qr = RandomLabel(10);
    const Label dr = RandomLabel(6);
    const Label v = RandomLabel(6);
    const Label pr = RandomLabel(6);
    uint64_t work = 0;
    EXPECT_EQ(CheckDeliveryAllowed(es, qr, dr, v, pr, &work),
              CheckDeliveryAllowedNaive(es, qr, dr, v, pr))
        << "ES=" << es.ToString() << " QR=" << qr.ToString() << " DR=" << dr.ToString()
        << " V=" << v.ToString() << " pR=" << pr.ToString();
  }
}

TEST_P(LabelChecksPropertyTest, DeliveryCheckMatchesNaiveHugeReceiver) {
  uint64_t total_work = 0;
  for (int t = 0; t < 40; ++t) {
    const Label es = RandomLabel(8);
    const Label qr = HugeLabel(Level::kL3);  // netd-shaped receive label
    const Label dr = RandomLabel(4);
    const Label v = RandomLabel(4);
    const Label pr = RandomLabel(4);
    uint64_t work = 0;
    EXPECT_EQ(CheckDeliveryAllowed(es, qr, dr, v, pr, &work),
              CheckDeliveryAllowedNaive(es, qr, dr, v, pr))
        << "ES=" << es.ToString();
    total_work += work;
  }
  // The O(1) extrema/default fast paths legitimately charge nothing, but
  // across many random shapes the linear-as-charged paths must show up.
  EXPECT_GT(total_work, 0u) << "big-label checks must charge linear work";
}

TEST_P(LabelChecksPropertyTest, DeliveryCheckMatchesNaiveHugeSender) {
  for (int t = 0; t < 40; ++t) {
    const Label es = HugeLabel(Level::kStar);  // netd-shaped send label
    const Label qr = RandomLabel(8);
    const Label dr = RandomLabel(4);
    const Label v = RandomLabel(4);
    const Label pr = RandomLabel(4);
    uint64_t work = 0;
    EXPECT_EQ(CheckDeliveryAllowed(es, qr, dr, v, pr, &work),
              CheckDeliveryAllowedNaive(es, qr, dr, v, pr));
  }
}

TEST_P(LabelChecksPropertyTest, DeliveryCheckMatchesNaiveHugeSenderWithTaint) {
  // The exact OKWS hot shape: a huge ⋆-rich sender label with a few level-3
  // taints that may or may not be covered by the receiver's clearances.
  for (int t = 0; t < 40; ++t) {
    Label es = HugeLabel(Level::kStar);
    es.Set(Handle::FromValue(rng_->NextInRange(1, 60)), Level::kL3);
    Label qr = RandomLabel(8);
    if (rng_->NextBool()) {
      qr.Set(Handle::FromValue(rng_->NextInRange(1, 60)), Level::kL3);
    }
    const Label dr = RandomLabel(4);
    const Label v = RandomLabel(4);
    const Label pr = RandomLabel(4);
    uint64_t work = 0;
    EXPECT_EQ(CheckDeliveryAllowed(es, qr, dr, v, pr, &work),
              CheckDeliveryAllowedNaive(es, qr, dr, v, pr));
  }
}

TEST_P(LabelChecksPropertyTest, ContaminationMatchesNaiveSmall) {
  for (int t = 0; t < 200; ++t) {
    const Label es = RandomLabel(12);
    const Label qs = RandomLabel(12);
    uint64_t work = 0;
    EXPECT_EQ(NeedsContamination(es, qs, &work), NeedsContaminationNaive(es, qs))
        << "ES=" << es.ToString() << " QS=" << qs.ToString();
  }
}

TEST_P(LabelChecksPropertyTest, ContaminationMatchesNaiveHugeReceiver) {
  for (int t = 0; t < 40; ++t) {
    const Label es = RandomLabel(8);
    const Label qs = HugeLabel(Level::kStar);  // netd's send label shape
    uint64_t work = 0;
    EXPECT_EQ(NeedsContamination(es, qs, &work), NeedsContaminationNaive(es, qs));
  }
}

TEST_P(LabelChecksPropertyTest, ContaminationMatchesNaiveHugeSender) {
  for (int t = 0; t < 40; ++t) {
    Label es = HugeLabel(Level::kStar);
    es.Set(Handle::FromValue(rng_->NextInRange(1, 60)), Level::kL3);
    const Label qs = RandomLabel(8);
    uint64_t work = 0;
    EXPECT_EQ(NeedsContamination(es, qs, &work), NeedsContaminationNaive(es, qs))
        << "ES(high)=" << es.CountEntriesAbove(qs.default_level())
        << " QS=" << qs.ToString();
  }
}

TEST_P(LabelChecksPropertyTest, AsymmetricAlgebraMatchesPointwise) {
  // Lub/Glb/Leq over small-vs-huge shapes agree with pointwise evaluation at
  // every probed handle (the asymmetric fast paths must be exact).
  for (int t = 0; t < 30; ++t) {
    const Label small = RandomLabel(6);
    const Label huge = HugeLabel(static_cast<Level>(rng_->NextBelow(5)));
    const Label join = Label::Lub(small, huge);
    const Label meet = Label::Glb(small, huge);
    for (uint64_t probe = 0; probe < 80; ++probe) {
      const Handle h = probe < 60 ? Handle::FromValue(probe + 1)
                                  : Handle::FromValue(1000 + (probe - 60) * 3);
      EXPECT_EQ(join.Get(h), LevelMax(small.Get(h), huge.Get(h)));
      EXPECT_EQ(meet.Get(h), LevelMin(small.Get(h), huge.Get(h)));
    }
    join.CheckRep();
    meet.CheckRep();
    EXPECT_TRUE(small.Leq(join));
    EXPECT_TRUE(huge.Leq(join));
    EXPECT_TRUE(meet.Leq(small));
    EXPECT_TRUE(meet.Leq(huge));
    // Leq both directions agrees with the join/meet characterization.
    EXPECT_EQ(small.Leq(huge), Label::Lub(small, huge).Equals(huge));
    EXPECT_EQ(huge.Leq(small), Label::Lub(huge, small).Equals(small));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LabelChecksPropertyTest,
                         ::testing::Values(3ULL, 17ULL, 99ULL, 2024ULL, 31337ULL));

}  // namespace
}  // namespace asbestos
