// Property tests for the kernel's fused label-rule evaluation: the fast
// paths (extrema pruning, histogram wholesale tests, asymmetric
// small-vs-huge shapes) must agree exactly with the naive materialized
// algebra on every input, including adversarially shaped ones.
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/kernel/label_checks.h"

namespace asbestos {
namespace {

class LabelChecksPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override { rng_ = std::make_unique<Rng>(GetParam()); }

  Level RandomLevel() { return static_cast<Level>(rng_->NextBelow(5)); }

  // Labels draw handles from a shared pool so overlaps are common.
  Label RandomLabel(uint64_t max_entries, uint64_t pool = 60) {
    Label l(RandomLevel());
    const uint64_t n = rng_->NextBelow(max_entries + 1);
    for (uint64_t i = 0; i < n; ++i) {
      l.Set(Handle::FromValue(rng_->NextInRange(1, pool)), RandomLevel());
    }
    return l;
  }

  // A huge label shaped like the OKWS system labels: mostly one level, a few
  // exceptions, drawn from a disjoint high handle range plus the shared pool.
  Label HugeLabel(Level bulk_level) {
    Label l(RandomLevel());
    const uint64_t n = 400 + rng_->NextBelow(600);
    for (uint64_t i = 0; i < n; ++i) {
      l.Set(Handle::FromValue(1000 + i * 3), bulk_level);
    }
    // A few overlapping and off-level entries.
    for (int i = 0; i < 6; ++i) {
      l.Set(Handle::FromValue(rng_->NextInRange(1, 60)), RandomLevel());
    }
    for (int i = 0; i < 3; ++i) {
      l.Set(Handle::FromValue(1000 + rng_->NextBelow(600) * 3), RandomLevel());
    }
    return l;
  }

  std::unique_ptr<Rng> rng_;
};

TEST_P(LabelChecksPropertyTest, DeliveryCheckMatchesNaiveSmall) {
  for (int t = 0; t < 150; ++t) {
    const Label es = RandomLabel(10);
    const Label qr = RandomLabel(10);
    const Label dr = RandomLabel(6);
    const Label v = RandomLabel(6);
    const Label pr = RandomLabel(6);
    uint64_t work = 0;
    EXPECT_EQ(CheckDeliveryAllowed(es, qr, dr, v, pr, &work),
              CheckDeliveryAllowedNaive(es, qr, dr, v, pr))
        << "ES=" << es.ToString() << " QR=" << qr.ToString() << " DR=" << dr.ToString()
        << " V=" << v.ToString() << " pR=" << pr.ToString();
  }
}

TEST_P(LabelChecksPropertyTest, DeliveryCheckMatchesNaiveHugeReceiver) {
  uint64_t total_work = 0;
  for (int t = 0; t < 40; ++t) {
    const Label es = RandomLabel(8);
    const Label qr = HugeLabel(Level::kL3);  // netd-shaped receive label
    const Label dr = RandomLabel(4);
    const Label v = RandomLabel(4);
    const Label pr = RandomLabel(4);
    uint64_t work = 0;
    EXPECT_EQ(CheckDeliveryAllowed(es, qr, dr, v, pr, &work),
              CheckDeliveryAllowedNaive(es, qr, dr, v, pr))
        << "ES=" << es.ToString();
    total_work += work;
  }
  // The O(1) extrema/default fast paths legitimately charge nothing, but
  // across many random shapes the linear-as-charged paths must show up.
  EXPECT_GT(total_work, 0u) << "big-label checks must charge linear work";
}

TEST_P(LabelChecksPropertyTest, DeliveryCheckMatchesNaiveHugeSender) {
  for (int t = 0; t < 40; ++t) {
    const Label es = HugeLabel(Level::kStar);  // netd-shaped send label
    const Label qr = RandomLabel(8);
    const Label dr = RandomLabel(4);
    const Label v = RandomLabel(4);
    const Label pr = RandomLabel(4);
    uint64_t work = 0;
    EXPECT_EQ(CheckDeliveryAllowed(es, qr, dr, v, pr, &work),
              CheckDeliveryAllowedNaive(es, qr, dr, v, pr));
  }
}

TEST_P(LabelChecksPropertyTest, DeliveryCheckMatchesNaiveHugeSenderWithTaint) {
  // The exact OKWS hot shape: a huge ⋆-rich sender label with a few level-3
  // taints that may or may not be covered by the receiver's clearances.
  for (int t = 0; t < 40; ++t) {
    Label es = HugeLabel(Level::kStar);
    es.Set(Handle::FromValue(rng_->NextInRange(1, 60)), Level::kL3);
    Label qr = RandomLabel(8);
    if (rng_->NextBool()) {
      qr.Set(Handle::FromValue(rng_->NextInRange(1, 60)), Level::kL3);
    }
    const Label dr = RandomLabel(4);
    const Label v = RandomLabel(4);
    const Label pr = RandomLabel(4);
    uint64_t work = 0;
    EXPECT_EQ(CheckDeliveryAllowed(es, qr, dr, v, pr, &work),
              CheckDeliveryAllowedNaive(es, qr, dr, v, pr));
  }
}

TEST_P(LabelChecksPropertyTest, ContaminationMatchesNaiveSmall) {
  for (int t = 0; t < 200; ++t) {
    const Label es = RandomLabel(12);
    const Label qs = RandomLabel(12);
    uint64_t work = 0;
    EXPECT_EQ(NeedsContamination(es, qs, &work), NeedsContaminationNaive(es, qs))
        << "ES=" << es.ToString() << " QS=" << qs.ToString();
  }
}

TEST_P(LabelChecksPropertyTest, ContaminationMatchesNaiveHugeReceiver) {
  for (int t = 0; t < 40; ++t) {
    const Label es = RandomLabel(8);
    const Label qs = HugeLabel(Level::kStar);  // netd's send label shape
    uint64_t work = 0;
    EXPECT_EQ(NeedsContamination(es, qs, &work), NeedsContaminationNaive(es, qs));
  }
}

TEST_P(LabelChecksPropertyTest, ContaminationMatchesNaiveHugeSender) {
  for (int t = 0; t < 40; ++t) {
    Label es = HugeLabel(Level::kStar);
    es.Set(Handle::FromValue(rng_->NextInRange(1, 60)), Level::kL3);
    const Label qs = RandomLabel(8);
    uint64_t work = 0;
    EXPECT_EQ(NeedsContamination(es, qs, &work), NeedsContaminationNaive(es, qs))
        << "ES(high)=" << es.CountEntriesAbove(qs.default_level())
        << " QS=" << qs.ToString();
  }
}

TEST_P(LabelChecksPropertyTest, AsymmetricAlgebraMatchesPointwise) {
  // Lub/Glb/Leq over small-vs-huge shapes agree with pointwise evaluation at
  // every probed handle (the asymmetric fast paths must be exact).
  for (int t = 0; t < 30; ++t) {
    const Label small = RandomLabel(6);
    const Label huge = HugeLabel(static_cast<Level>(rng_->NextBelow(5)));
    const Label join = Label::Lub(small, huge);
    const Label meet = Label::Glb(small, huge);
    for (uint64_t probe = 0; probe < 80; ++probe) {
      const Handle h = probe < 60 ? Handle::FromValue(probe + 1)
                                  : Handle::FromValue(1000 + (probe - 60) * 3);
      EXPECT_EQ(join.Get(h), LevelMax(small.Get(h), huge.Get(h)));
      EXPECT_EQ(meet.Get(h), LevelMin(small.Get(h), huge.Get(h)));
    }
    join.CheckRep();
    meet.CheckRep();
    EXPECT_TRUE(small.Leq(join));
    EXPECT_TRUE(huge.Leq(join));
    EXPECT_TRUE(meet.Leq(small));
    EXPECT_TRUE(meet.Leq(huge));
    // Leq both directions agrees with the join/meet characterization.
    EXPECT_EQ(small.Leq(huge), Label::Lub(small, huge).Equals(huge));
    EXPECT_EQ(huge.Leq(small), Label::Lub(huge, small).Equals(small));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LabelChecksPropertyTest,
                         ::testing::Values(3ULL, 17ULL, 99ULL, 2024ULL, 31337ULL));

// --- Flow-check verdict cache ------------------------------------------------

// Restores cache state so these tests cannot leak config into each other.
class LabelCheckCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ResetLabelCheckCache();
    SetLabelCheckCacheEnabled(true);
  }
  void TearDown() override {
    ResetLabelCheckCache();
    SetLabelCheckCacheEnabled(true);
  }
};

TEST_F(LabelCheckCacheTest, HitMissCountersAndVerdictStability) {
  LabelBuilder eb(Level::kL1);
  for (uint64_t h = 1; h <= 150; ++h) {
    eb.Append(Handle::FromValue(h * 2), h % 3 == 0 ? Level::kL3 : Level::kL2);
  }
  const Label es = eb.Build();
  LabelBuilder qb(Level::kL2);
  for (uint64_t h = 1; h <= 150; ++h) {
    qb.Append(Handle::FromValue(h * 2), Level::kL3);
  }
  const Label qr = qb.Build();
  const Label dr = Label::Bottom();
  const Label v = Label::Top();
  const Label pr = Label::Top();

  const LabelCheckCacheStats& stats = GetLabelCheckCacheStats();
  uint64_t work_miss = 0;
  const bool verdict = CheckDeliveryAllowed(es, qr, dr, v, pr, &work_miss);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 0u);

  uint64_t work_hit = 0;
  EXPECT_EQ(CheckDeliveryAllowed(es, qr, dr, v, pr, &work_hit), verdict);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(work_hit, work_miss) << "a hit must charge exactly the uncached work";
  EXPECT_EQ(verdict, CheckDeliveryAllowedNaive(es, qr, dr, v, pr));

  // Mutating a COPY re-keys it: the tuple with the mutated label is a miss,
  // and the original tuple still hits (no invalidation, ever).
  Label qr2 = qr;
  qr2.Set(Handle::FromValue(2), Level::kL0);
  uint64_t work2 = 0;
  (void)CheckDeliveryAllowed(es, qr2, dr, v, pr, &work2);
  EXPECT_EQ(stats.misses, 2u);
  uint64_t work3 = 0;
  EXPECT_EQ(CheckDeliveryAllowed(es, qr, dr, v, pr, &work3), verdict);
  EXPECT_EQ(stats.hits, 2u);
}

TEST_F(LabelCheckCacheTest, InPlaceMutationNeverServesStaleVerdicts) {
  // The dangerous shape: the SAME Label object mutates between checks (the
  // kernel's receive labels do exactly this). The id re-key must force a
  // fresh evaluation.
  Label es({{Handle::FromValue(7), Level::kL3}}, Level::kL1);
  Label qs(Level::kL2);
  uint64_t work = 0;
  EXPECT_TRUE(NeedsContamination(es, qs, &work));
  qs.Set(Handle::FromValue(7), Level::kL3);  // in place: already contaminated
  EXPECT_FALSE(NeedsContamination(es, qs, &work));
  qs.Set(Handle::FromValue(7), Level::kL2);  // in place again
  EXPECT_TRUE(NeedsContamination(es, qs, &work));
}

TEST_F(LabelCheckCacheTest, ChargedWorkMatchesUncachedBaselineExactly) {
  // Run a recurring-tuple workload twice — cached, then uncached — and
  // require bit-identical LabelWorkStats deltas and per-call work: Figure-9
  // cost curves must not be able to tell the cache exists.
  Rng rng(20240731ULL);
  std::vector<Label> es_pool;
  std::vector<Label> qr_pool;
  for (int i = 0; i < 6; ++i) {
    LabelBuilder eb(Level::kL1);
    LabelBuilder qb(Level::kL2);
    uint64_t he = 0;
    uint64_t hq = 0;
    const uint64_t n = 40 + rng.NextBelow(200);
    for (uint64_t k = 0; k < n; ++k) {
      he += 1 + rng.NextBelow(4);
      hq += 1 + rng.NextBelow(4);
      eb.Append(Handle::FromValue(he), rng.NextBool() ? Level::kL2 : Level::kL3);
      qb.Append(Handle::FromValue(hq), Level::kL3);
    }
    es_pool.push_back(eb.Build());
    qr_pool.push_back(qb.Build());
  }
  const Label dr = Label::Bottom();
  const Label v = Label::Top();
  const Label pr = Label::Top();

  const auto run_workload = [&]() {
    std::vector<uint64_t> works;
    std::vector<bool> verdicts;
    for (int round = 0; round < 20; ++round) {
      for (size_t i = 0; i < es_pool.size(); ++i) {
        for (size_t j = 0; j < qr_pool.size(); ++j) {
          uint64_t w = 0;
          verdicts.push_back(
              CheckDeliveryAllowed(es_pool[i], qr_pool[j], dr, v, pr, &w));
          works.push_back(w);
          w = 0;
          verdicts.push_back(NeedsContamination(es_pool[i], qr_pool[j], &w));
          works.push_back(w);
        }
      }
    }
    return std::make_pair(works, verdicts);
  };

  SetLabelCheckCacheEnabled(true);
  ResetLabelWorkStats();
  const auto cached = run_workload();
  const LabelWorkStats cached_stats = GetLabelWorkStats();
  EXPECT_GT(GetLabelCheckCacheStats().hits, 0u) << "the workload must actually hit";

  SetLabelCheckCacheEnabled(false);
  ResetLabelWorkStats();
  const auto uncached = run_workload();
  const LabelWorkStats uncached_stats = GetLabelWorkStats();

  EXPECT_EQ(cached.first, uncached.first) << "per-call charged work must match";
  EXPECT_EQ(cached.second, uncached.second);
  EXPECT_EQ(cached_stats.entries_visited, uncached_stats.entries_visited);
  EXPECT_EQ(cached_stats.fast_path_hits, uncached_stats.fast_path_hits);
  EXPECT_EQ(cached_stats.ops, uncached_stats.ops);
}

TEST_F(LabelCheckCacheTest, CapacityEvictionOnly) {
  // More distinct tuples than slots: entries leave by displacement, never by
  // invalidation. (Direct-mapped: collisions guarantee evictions well before
  // the slot count is exceeded, but exceeding it makes them certain.)
  const Label qs(Level::kL2);
  const LabelCheckCacheStats& stats = GetLabelCheckCacheStats();
  for (uint64_t i = 0; i < kContaminationCacheSlots + 512; ++i) {
    LabelBuilder b(Level::kL1);
    b.Append(Handle::FromValue(1 + i), Level::kL3);
    const Label es = b.Build();
    uint64_t w = 0;
    (void)NeedsContamination(es, qs, &w);
  }
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.hits, 0u) << "all tuples were distinct";
  EXPECT_EQ(stats.misses, kContaminationCacheSlots + 512);
}

TEST_F(LabelCheckCacheTest, SteadyStateReceiveLabelUpdatesKeepHitting) {
  // The live OKWS shape the ROADMAP called out: receive labels mutate in
  // place (JoinInPlace per contamination/D_R), so before the merge paths
  // canonicalized their results every entity's label carried a private rep
  // with a fresh id and equal tuples never re-keyed to cache hits. Two LIVE
  // entities (worker event processes, say) whose labels went through the
  // same update history must now share one canonical rep — the second
  // entity's checks are pure cache hits.
  const auto grow_qr = [] {
    LabelBuilder qb(Level::kL2);
    for (uint64_t h = 1; h <= 200; ++h) {
      qb.Append(Handle::FromValue(h * 4), Level::kL3);
    }
    Label qr = qb.Build();
    // Per-request receive-label raises (D_R for three user taints).
    for (uint64_t u = 1; u <= 3; ++u) {
      qr.JoinInPlace(Label({{Handle::FromValue(u * 1000), Level::kL3}}, Level::kStar));
    }
    return qr;
  };
  const Label qr_worker1 = grow_qr();
  const Label qr_worker2 = grow_qr();  // both alive, one canonical rep
  ASSERT_EQ(qr_worker1.rep_id(), qr_worker2.rep_id());

  LabelBuilder eb(Level::kL1);
  for (uint64_t h = 1; h <= 200; ++h) {
    eb.Append(Handle::FromValue(h * 4), h % 2 == 0 ? Level::kL2 : Level::kL3);
  }
  const Label es = eb.Build();

  const LabelCheckCacheStats& stats = GetLabelCheckCacheStats();
  uint64_t work_first = 0;
  const bool verdict_first = CheckDeliveryAllowed(es, qr_worker1, Label::Bottom(),
                                                  Label::Top(), Label::Top(), &work_first);
  const uint64_t misses_after_first = stats.misses;
  EXPECT_EQ(stats.hits, 0u);

  uint64_t work_second = 0;
  const bool verdict_second = CheckDeliveryAllowed(es, qr_worker2, Label::Bottom(),
                                                   Label::Top(), Label::Top(), &work_second);
  EXPECT_EQ(verdict_second, verdict_first);
  EXPECT_EQ(stats.misses, misses_after_first) << "the second worker must not re-miss";
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(work_second, work_first) << "hits replay the exact charged work";
}

}  // namespace
}  // namespace asbestos
