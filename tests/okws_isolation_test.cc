// The paper's security claims (§2, §7.8), tested adversarially: compromised
// workers cannot violate user isolation; declassifiers are trusted only by
// their own user; the kernel — not application code — is the boundary.
#include <gtest/gtest.h>

#include "src/okws/demux.h"
#include "src/okws/okws_world.h"
#include "src/okws/services.h"

namespace asbestos {
namespace {

// A fully compromised worker: on every request it attempts to exfiltrate a
// captured secret to another user's connection and to forge database writes
// for another user, then answers innocently. Compromise is modelled by
// reaching past the framework to the raw kernel context (arbitrary code in
// the worker's protection domain).
class EvilService : public Service {
 public:
  struct SharedLoot {
    uint64_t victim_uc = 0;       // uC value captured from the victim's request
    std::string victim_secret;    // data the worker saw while serving the victim
    uint64_t leak_attempts = 0;
    uint64_t forged_db_writes = 0;
  };

  explicit EvilService(SharedLoot* loot) : loot_(loot) {}

  void OnRequest(ServiceContext& sc) override {
    if (sc.username() == "alice") {
      // Serving the victim: remember everything we can see.
      loot_->victim_uc = sc.connection_port_value();
      loot_->victim_secret = "alice's data: " + sc.request().Query("d");
      sc.Respond(200, "ok");
      return;
    }
    // Serving the attacker (bob): try to push the victim's secret out over
    // the victim's connection...
    ProcessContext& raw = sc.kernel_context();
    {
      Message w;
      w.type = 6;  // netd_proto::kWrite
      w.words = {0};
      w.data = "INJECTED:" + loot_->victim_secret;
      (void)raw.Send(Handle::FromValue(loot_->victim_uc), std::move(w));
      ++loot_->leak_attempts;
    }
    // ...and to write the database as the victim (forged username line).
    {
      Message q;
      q.type = 1;  // dbproxy_proto::kQuery
      q.words = {99, 0};
      q.data = "alice\nINSERT INTO notes (text) VALUES ('forged by bob worker')";
      // The best V a bob-tainted process can offer still carries bob's taint.
      (void)raw.Send(Handle::FromValue(raw.GetEnv("dbproxy_query")), std::move(q));
      ++loot_->forged_db_writes;
    }
    sc.Respond(200, "innocent looking response");
  }

 private:
  SharedLoot* loot_;
};

class OkwsIsolationTest : public ::testing::Test {
 protected:
  void Boot(OkwsWorldConfig config) {
    world_ = std::make_unique<OkwsWorld>(std::move(config));
    world_->PumpUntilReady();
  }

  HttpLoadClient::Result Fetch(const std::string& target, const std::string& user,
                               const std::string& pass) {
    HttpLoadClient client(&world_->net(), 80, 4);
    client.Enqueue(OkwsWorld::MakeRequest(target, user, pass), 0);
    world_->RunClient(&client);
    return client.results().empty() ? HttpLoadClient::Result{} : client.results()[0];
  }

  std::unique_ptr<OkwsWorld> world_;
};

TEST_F(OkwsIsolationTest, UsersCannotReadEachOthersDatabaseRows) {
  OkwsWorldConfig config;
  config.users = {{"alice", "a"}, {"bob", "b"}};
  config.services.push_back(
      {"notes", [] { return std::make_unique<NotesService>(); }, false, {}});
  config.extra_tables = {NotesService::kTableSql};
  Boot(std::move(config));

  EXPECT_EQ(Fetch("/notes?op=add&text=alice-secret", "alice", "a").status, 200);
  EXPECT_EQ(Fetch("/notes?op=add&text=bob-note", "bob", "b").status, 200);

  // Both users' workers SELECT the same table; ok-dbproxy sends *all* rows,
  // each tainted for its owner, and the kernel delivers only the rows each
  // event process may see (§7.5).
  const auto alice_list = Fetch("/notes?op=list", "alice", "a");
  EXPECT_EQ(alice_list.body, "alice-secret\n");
  const auto bob_list = Fetch("/notes?op=list", "bob", "b");
  EXPECT_EQ(bob_list.body, "bob-note\n");
  EXPECT_EQ(bob_list.body.find("alice"), std::string::npos);
  EXPECT_GE(world_->kernel().stats().drops_label_check, 2u)
      << "the cross-user rows were dropped by the kernel, not by polite code";
}

TEST_F(OkwsIsolationTest, CompromisedWorkerCannotLeakAcrossUsers) {
  EvilService::SharedLoot loot;
  OkwsWorldConfig config;
  config.users = {{"alice", "a"}, {"bob", "b"}};
  config.services.push_back(
      {"evil", [&loot] { return std::make_unique<EvilService>(&loot); }, false, {}});
  config.services.push_back(
      {"notes", [] { return std::make_unique<NotesService>(); }, false, {}});
  config.extra_tables = {NotesService::kTableSql};
  Boot(std::move(config));

  // Alice uses the (compromised) service and hands it a secret.
  const auto alice_r = Fetch("/evil?d=launch-codes", "alice", "a");
  EXPECT_EQ(alice_r.status, 200);
  ASSERT_NE(loot.victim_uc, 0u) << "the worker did capture alice's connection port";

  // Keep alice's NEXT connection open while bob attacks: enqueue both
  // concurrently so alice's uC is live when the attack runs.
  HttpLoadClient client(&world_->net(), 80, 2);
  client.Enqueue(OkwsWorld::MakeRequest("/evil?d=more-secrets", "alice", "a"), 1);
  client.Enqueue(OkwsWorld::MakeRequest("/evil", "bob", "b"), 2);
  world_->RunClient(&client);
  ASSERT_EQ(client.results().size(), 2u);
  EXPECT_GE(loot.leak_attempts, 1u);

  // Neither response contains the injected secret, and alice's connection
  // never carried it: the kernel dropped the cross-user write.
  for (const auto& r : client.results()) {
    EXPECT_EQ(r.body.find("INJECTED"), std::string::npos);
    EXPECT_EQ(r.body.find("launch-codes"), std::string::npos)
        << "bob's response must not carry alice's secret";
  }
  EXPECT_GE(world_->kernel().stats().drops_label_check +
                world_->kernel().stats().drops_no_port,
            1u);

  // The forged database write for alice was rejected: her notes are clean.
  const auto alice_notes = Fetch("/notes?op=list", "alice", "a");
  EXPECT_EQ(alice_notes.status, 200);
  EXPECT_EQ(alice_notes.body.find("forged"), std::string::npos)
      << "dbproxy must reject a bob-tainted verify label for alice's rows";
}

TEST_F(OkwsIsolationTest, DeclassifierPublishesOnlyItsOwnUsersData) {
  OkwsWorldConfig config;
  config.users = {{"alice", "a"}, {"bob", "b"}};
  config.services.push_back(
      {"profile", [] { return std::make_unique<ProfileService>(); }, true, {}});
  config.services.push_back(
      {"notes", [] { return std::make_unique<NotesService>(); }, false, {}});
  config.extra_tables = {ProfileService::kTableSql, NotesService::kTableSql};
  Boot(std::move(config));

  // Alice stores a private note AND publishes a public profile.
  EXPECT_EQ(Fetch("/notes?op=add&text=top-secret", "alice", "a").status, 200);
  EXPECT_EQ(Fetch("/profile?op=set&text=hello+world", "alice", "a").status, 200);

  // Bob can read alice's declassified profile (decentralized
  // declassification, §7.6)...
  const auto bob_view = Fetch("/profile?op=get&who=alice", "bob", "b");
  EXPECT_EQ(bob_view.status, 200);
  EXPECT_EQ(bob_view.body, "hello world");

  // ...but alice's private note remains invisible to bob through any path.
  const auto bob_notes = Fetch("/notes?op=list", "bob", "b");
  EXPECT_EQ(bob_notes.body.find("top-secret"), std::string::npos);
}

TEST_F(OkwsIsolationTest, NonDeclassifierCannotPublish) {
  OkwsWorldConfig config;
  config.users = {{"alice", "a"}};
  // Same service code, but NOT registered as a declassifier: ok-demux
  // contaminates it with uT 3 instead of granting uT ⋆.
  config.services.push_back(
      {"profile", [] { return std::make_unique<ProfileService>(); }, false, {}});
  config.extra_tables = {ProfileService::kTableSql};
  Boot(std::move(config));

  const auto r = Fetch("/profile?op=set&text=x", "alice", "a");
  EXPECT_EQ(r.status, 403) << "the worker holds uT 3, not uT ⋆, and cannot declassify";
}

TEST_F(OkwsIsolationTest, SpoofedConnectionNotificationIgnored) {
  OkwsWorldConfig config;
  config.users = {{"alice", "a"}};
  config.services.push_back(
      {"echo", [] { return std::make_unique<EchoService>(); }, false, {}});
  Boot(std::move(config));

  // An arbitrary process tries to impersonate netd by sending kNotifyConn
  // to demux's notification port. It holds no ⋆ for that port, so the
  // kernel drops the message at the port label.
  auto* demux = world_->kernel().FindProcessByName("demux");
  ASSERT_NE(demux, nullptr);
  auto* demux_code = dynamic_cast<DemuxProcess*>(demux->code.get());
  ASSERT_NE(demux_code, nullptr);
  const Handle notify = [&] {
    // The notification port value is discoverable (values confer nothing);
    // model an attacker that somehow learned it.
    return demux_code->session_port();  // closed in exactly the same way
  }();

  SpawnArgs args;
  args.name = "attacker";
  class Attacker : public ProcessCode {
   public:
    void HandleMessage(ProcessContext&, const Message&) override {}
  };
  const ProcessId attacker =
      world_->kernel().CreateProcess(std::make_unique<Attacker>(), args);
  const uint64_t drops_before = world_->kernel().stats().drops_label_check;
  world_->kernel().WithProcessContext(attacker, [&](ProcessContext& ctx) {
    Message fake;
    fake.type = 122;  // kSessionReg
    fake.words = {1, 0xdead};
    EXPECT_EQ(ctx.Send(notify, std::move(fake)), Status::kOk) << "send lies, as designed";
  });
  world_->kernel().RunUntilIdle();
  EXPECT_EQ(world_->kernel().stats().drops_label_check, drops_before + 1);
}

TEST_F(OkwsIsolationTest, TaintedProcessIsTransitivelyConfined) {
  // The §7.2 argument generalized: a process carrying a level-3 taint that a
  // receiver was not explicitly cleared for cannot reach that receiver at
  // all — even trusted system services like ok-demux — so tainted data
  // cannot be laundered through ignorant processes (§2).
  OkwsWorldConfig config;
  config.users = {{"alice", "a"}};
  config.services.push_back(
      {"store", [] { return std::make_unique<StorageService>(); }, false, {}});
  Boot(std::move(config));
  (void)Fetch("/store?d=private", "alice", "a");

  auto* demux = world_->kernel().FindProcessByName("demux");
  ASSERT_NE(demux, nullptr);
  ASSERT_FALSE(demux->owned_ports.empty());
  const Handle demux_public_port = demux->owned_ports[0];  // worker-register port, label {3}

  SpawnArgs args;
  args.name = "tainted-attacker";
  class Attacker : public ProcessCode {
   public:
    void HandleMessage(ProcessContext&, const Message&) override {}
  };
  const ProcessId attacker =
      world_->kernel().CreateProcess(std::make_unique<Attacker>(), args);

  const uint64_t drops_before = world_->kernel().stats().drops_label_check;
  world_->kernel().WithProcessContext(attacker, [&](ProcessContext& ctx) {
    // Self-taint with a compartment nobody cleared demux for.
    const Handle foreign_taint = ctx.NewHandle();
    EXPECT_EQ(ctx.SetSendLevel(foreign_taint, Level::kL3), Status::kOk);
    Message w;
    w.type = 120;  // kWorkerRegister — demux's public port accepts these...
    w.data = "store";
    w.words = {1};
    EXPECT_EQ(ctx.Send(demux_public_port, std::move(w)), Status::kOk);
  });
  world_->kernel().RunUntilIdle();
  // ...but the kernel dropped it: demux's receive label does not accept the
  // foreign taint, even though the port label {3} would.
  EXPECT_EQ(world_->kernel().stats().drops_label_check, drops_before + 1);

  // The system remains fully functional for alice.
  EXPECT_EQ(Fetch("/store", "alice", "a").status, 200);
}

}  // namespace
}  // namespace asbestos
