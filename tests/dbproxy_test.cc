// ok-dbproxy in isolation (paper §7.5-7.6): privileged-port capability,
// hidden USER_ID column, verify-label enforcement on writes, per-row taints
// on reads, and declassified rows.
#include <gtest/gtest.h>

#include "src/db/dbproxy.h"
#include "tests/test_util.h"

namespace asbestos {
namespace {

using dbproxy_proto::MessageType;
using testing::RecorderProcess;
using testing::ScriptedProcess;

class DbproxyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto code = std::make_unique<DbproxyProcess>();
    proxy_ = code.get();
    SpawnArgs args;
    args.name = "dbproxy";
    args.component = Component::kOkdb;
    kernel_.CreateProcess(std::move(code), args);

    // A stand-in idd: owns the user compartments and the privileged-port
    // capability (granted here directly; the launcher does this in vivo).
    SpawnArgs iargs;
    iargs.name = "idd";
    idd_ = kernel_.CreateProcess(std::make_unique<RecorderProcess>(&received_), iargs);
    kernel_.WithProcessContext(idd_, [&](ProcessContext& ctx) {
      idd_port_ = ctx.NewPort(Label::Top());
      EXPECT_EQ(ctx.SetPortLabel(idd_port_, Label::Top()), Status::kOk);
    });
    GrantPrivPortTo(idd_);

    // Create a worker table (gains the hidden USER_ID column) and bind two
    // users.
    PrivExec("CREATE TABLE notes (text TEXT)");
    alice_ = BindUser("alice", 1);
    bob_ = BindUser("bob", 2);
  }

  struct UserHandles {
    Handle taint;
    Handle grant;
  };

  void GrantPrivPortTo(ProcessId pid) {
    // Boot-loader shortcut: the launcher normally relays this capability.
    Process* proxy_proc = kernel_.FindProcessByName("dbproxy");
    ASSERT_NE(proxy_proc, nullptr);
    kernel_.WithProcessContext(proxy_proc->id, [&](ProcessContext& ctx) {
      SendArgs args;
      args.decont_send = Label({{proxy_->priv_port(), Level::kStar}}, Level::kL3);
      Message m;
      m.type = 999;  // any message; only the grant matters
      EXPECT_EQ(ctx.Send(PortOf(pid), std::move(m), args), Status::kOk);
    });
    kernel_.RunUntilIdle();
    received_.clear();
  }

  Handle PortOf(ProcessId pid) { return pid == idd_ ? idd_port_ : worker_port_; }

  void PrivExec(const std::string& sql) {
    kernel_.WithProcessContext(idd_, [&](ProcessContext& ctx) {
      Message q;
      q.type = MessageType::kQuery;
      q.words = {1, 0};
      q.data = "\n" + sql;
      q.reply_port = idd_port_;
      EXPECT_EQ(ctx.Send(proxy_->priv_port(), std::move(q)), Status::kOk);
    });
    kernel_.RunUntilIdle();
    ASSERT_FALSE(received_.empty());
    EXPECT_EQ(received_.back().msg.words[1], 0u) << sql;
    received_.clear();
  }

  UserHandles BindUser(const std::string& username, int64_t uid) {
    UserHandles u;
    kernel_.WithProcessContext(idd_, [&](ProcessContext& ctx) {
      u.taint = ctx.NewHandle();
      u.grant = ctx.NewHandle();
      Message bind;
      bind.type = MessageType::kBind;
      bind.data = username;
      bind.words = {u.taint.value(), u.grant.value(), static_cast<uint64_t>(uid)};
      SendArgs args;
      args.decont_send = Label({{u.taint, Level::kStar}}, Level::kL3);
      args.decont_receive = Label({{u.taint, Level::kL3}}, Level::kStar);
      EXPECT_EQ(ctx.Send(proxy_->priv_port(), std::move(bind), args), Status::kOk);
    });
    kernel_.RunUntilIdle();
    received_.clear();
    return u;
  }

  // Creates a worker-like process acting for `user`: tainted uT 3, holding
  // uG ⋆, cleared to receive its user's rows.
  ProcessId MakeWorker(const std::string& name, const UserHandles& u) {
    SpawnArgs args;
    args.name = name;
    const ProcessId pid =
        kernel_.CreateProcess(std::make_unique<RecorderProcess>(&received_), args);
    kernel_.WithProcessContext(pid, [&](ProcessContext& ctx) {
      worker_port_ = ctx.NewPort(Label::Top());
      EXPECT_EQ(ctx.SetPortLabel(worker_port_, Label::Top()), Status::kOk);
    });
    kernel_.WithProcessContext(idd_, [&](ProcessContext& ctx) {
      Message m;
      m.type = 998;
      SendArgs args2;
      args2.contaminate = Label({{u.taint, Level::kL3}}, Level::kStar);
      args2.decont_send = Label({{u.grant, Level::kStar}}, Level::kL3);
      args2.decont_receive = Label({{u.taint, Level::kL3}}, Level::kStar);
      EXPECT_EQ(ctx.Send(worker_port_, std::move(m), args2), Status::kOk);
    });
    kernel_.RunUntilIdle();
    received_.clear();
    return pid;
  }

  // Sends a query as `user` with the standard worker verify label.
  void WorkerQuery(ProcessId worker, const UserHandles& u, const std::string& username,
                   const std::string& sql, uint64_t flags = 0) {
    kernel_.WithProcessContext(worker, [&](ProcessContext& ctx) {
      Message q;
      q.type = MessageType::kQuery;
      q.words = {1, flags};
      q.data = username + "\n" + sql;
      q.reply_port = worker_port_;
      SendArgs args;
      const Level taint_level =
          ctx.send_label().Get(u.taint) == Level::kStar ? Level::kStar : Level::kL3;
      args.verify = Label({{u.taint, taint_level}, {u.grant, Level::kL0}}, Level::kL2);
      EXPECT_EQ(ctx.Send(proxy_->query_port(), std::move(q), args), Status::kOk);
    });
    kernel_.RunUntilIdle();
  }

  Kernel kernel_{0xdbdbULL};
  DbproxyProcess* proxy_ = nullptr;
  ProcessId idd_ = kNoProcess;
  Handle idd_port_;
  Handle worker_port_;
  UserHandles alice_;
  UserHandles bob_;
  std::vector<RecorderProcess::Received> received_;
};

TEST_F(DbproxyTest, PrivPortClosedToStrangers) {
  SpawnArgs args;
  args.name = "stranger";
  const ProcessId stranger = kernel_.CreateProcess(std::make_unique<ScriptedProcess>(), args);
  const uint64_t drops = kernel_.stats().drops_label_check;
  kernel_.WithProcessContext(stranger, [&](ProcessContext& ctx) {
    Message q;
    q.type = MessageType::kQuery;
    q.words = {1, 0};
    q.data = "\nDELETE FROM okws_users";
    EXPECT_EQ(ctx.Send(proxy_->priv_port(), std::move(q)), Status::kOk);
  });
  kernel_.RunUntilIdle();
  EXPECT_EQ(kernel_.stats().drops_label_check, drops + 1);
}

TEST_F(DbproxyTest, WriteStampsHiddenUserIdColumn) {
  const ProcessId w = MakeWorker("worker-alice", alice_);
  WorkerQuery(w, alice_, "alice", "INSERT INTO notes (text) VALUES ('hi')");
  ASSERT_FALSE(received_.empty());
  EXPECT_EQ(received_.back().msg.type, MessageType::kDone);
  EXPECT_EQ(received_.back().msg.words[1], 0u);
  received_.clear();

  // Privileged read shows the stamped column.
  kernel_.WithProcessContext(idd_, [&](ProcessContext& ctx) {
    Message q;
    q.type = MessageType::kQuery;
    q.words = {2, 0};
    q.data = "\nSELECT text, user_id FROM notes";
    q.reply_port = idd_port_;
    EXPECT_EQ(ctx.Send(proxy_->priv_port(), std::move(q)), Status::kOk);
  });
  kernel_.RunUntilIdle();
  ASSERT_EQ(received_.size(), 2u);  // one row + done
  std::vector<SqlValue> row;
  ASSERT_TRUE(DecodeDbRow(received_[0].msg.data, &row));
  EXPECT_EQ(row[0].AsText(), "hi");
  EXPECT_EQ(row[1].AsInt(), 1) << "alice's user id";
}

TEST_F(DbproxyTest, WorkerCannotNameUserIdColumn) {
  const ProcessId w = MakeWorker("worker-alice", alice_);
  WorkerQuery(w, alice_, "alice", "SELECT text FROM notes WHERE user_id = 2");
  ASSERT_FALSE(received_.empty());
  EXPECT_EQ(received_.back().msg.words[1],
            static_cast<uint64_t>(-static_cast<int>(Status::kAccessDenied)));
}

TEST_F(DbproxyTest, WorkerCannotTouchPasswordTableOrSchema) {
  const ProcessId w = MakeWorker("worker-alice", alice_);
  WorkerQuery(w, alice_, "alice", "SELECT * FROM okws_users");
  EXPECT_EQ(received_.back().msg.words[1],
            static_cast<uint64_t>(-static_cast<int>(Status::kAccessDenied)));
  received_.clear();
  WorkerQuery(w, alice_, "alice", "CREATE TABLE evil (x TEXT)");
  EXPECT_EQ(received_.back().msg.words[1],
            static_cast<uint64_t>(-static_cast<int>(Status::kAccessDenied)));
}

TEST_F(DbproxyTest, RowsReturnTaintedPerOwner) {
  const ProcessId wa = MakeWorker("worker-alice", alice_);
  WorkerQuery(wa, alice_, "alice", "INSERT INTO notes (text) VALUES ('alice-note')");
  received_.clear();
  const Handle alice_worker_port = worker_port_;
  (void)alice_worker_port;

  const ProcessId wb = MakeWorker("worker-bob", bob_);
  WorkerQuery(wb, bob_, "bob", "INSERT INTO notes (text) VALUES ('bob-note')");
  received_.clear();

  // Bob's worker selects the whole table: alice's row is sent but dropped by
  // the kernel; only bob's row and the untainted completion arrive.
  const uint64_t drops = kernel_.stats().drops_label_check;
  WorkerQuery(wb, bob_, "bob", "SELECT text FROM notes");
  ASSERT_EQ(received_.size(), 2u);
  std::vector<SqlValue> row;
  ASSERT_TRUE(DecodeDbRow(received_[0].msg.data, &row));
  EXPECT_EQ(row[0].AsText(), "bob-note");
  EXPECT_EQ(received_[1].msg.type, MessageType::kDone);
  EXPECT_GT(kernel_.stats().drops_label_check, drops)
      << "alice's row was emitted and dropped by labels, not filtered by SQL";
}

TEST_F(DbproxyTest, UpdatesAndDeletesScopedToOwnRows) {
  const ProcessId wa = MakeWorker("worker-alice", alice_);
  WorkerQuery(wa, alice_, "alice", "INSERT INTO notes (text) VALUES ('mine')");
  received_.clear();
  const ProcessId wb = MakeWorker("worker-bob", bob_);
  WorkerQuery(wb, bob_, "bob", "UPDATE notes SET text = 'defaced'");
  EXPECT_EQ(received_.back().msg.words[2], 0u) << "0 rows affected: alice's row untouchable";
  received_.clear();
  WorkerQuery(wb, bob_, "bob", "DELETE FROM notes");
  EXPECT_EQ(received_.back().msg.words[2], 0u);
}

TEST_F(DbproxyTest, ForgedUsernameRejectedByVerifyBound) {
  // Bob's worker claims to be alice: its V necessarily carries bob's taint
  // at 3 (the kernel enforces ES ⊑ V), which exceeds {aliceT 3, aliceG 0, 2}.
  const ProcessId wb = MakeWorker("worker-bob", bob_);
  kernel_.WithProcessContext(wb, [&](ProcessContext& ctx) {
    Message q;
    q.type = MessageType::kQuery;
    q.words = {1, 0};
    q.data = "alice\nINSERT INTO notes (text) VALUES ('forged')";
    q.reply_port = worker_port_;
    SendArgs args;
    args.verify = Label({{bob_.taint, Level::kL3}, {bob_.grant, Level::kL0}}, Level::kL2);
    EXPECT_EQ(ctx.Send(proxy_->query_port(), std::move(q), args), Status::kOk);
  });
  kernel_.RunUntilIdle();
  ASSERT_FALSE(received_.empty());
  EXPECT_EQ(received_.back().msg.words[1],
            static_cast<uint64_t>(-static_cast<int>(Status::kAccessDenied)));
}

TEST_F(DbproxyTest, DeclassifyRequiresStarInVerify) {
  // A worker holding uT at 3 cannot write public rows...
  const ProcessId wa = MakeWorker("worker-alice", alice_);
  WorkerQuery(wa, alice_, "alice", "INSERT INTO notes (text) VALUES ('pub')",
              dbproxy_proto::kFlagDeclassify);
  EXPECT_EQ(received_.back().msg.words[1],
            static_cast<uint64_t>(-static_cast<int>(Status::kAccessDenied)));
  received_.clear();

  // ...but a declassifier (uT at ⋆, granted by idd) can; the row comes back
  // untainted to anyone.
  SpawnArgs dargs;
  dargs.name = "declassifier-alice";
  const ProcessId d =
      kernel_.CreateProcess(std::make_unique<RecorderProcess>(&received_), dargs);
  kernel_.WithProcessContext(d, [&](ProcessContext& ctx) {
    worker_port_ = ctx.NewPort(Label::Top());
    EXPECT_EQ(ctx.SetPortLabel(worker_port_, Label::Top()), Status::kOk);
  });
  kernel_.WithProcessContext(idd_, [&](ProcessContext& ctx) {
    Message m;
    m.type = 998;
    SendArgs args;
    args.decont_send =
        Label({{alice_.taint, Level::kStar}, {alice_.grant, Level::kStar}}, Level::kL3);
    EXPECT_EQ(ctx.Send(worker_port_, std::move(m), args), Status::kOk);
  });
  kernel_.RunUntilIdle();
  received_.clear();
  WorkerQuery(d, alice_, "alice", "INSERT INTO notes (text) VALUES ('public-profile')",
              dbproxy_proto::kFlagDeclassify);
  EXPECT_EQ(received_.back().msg.words[1], 0u);
  received_.clear();

  // Bob's plain worker can now read the declassified row untainted.
  const ProcessId wb = MakeWorker("worker-bob", bob_);
  WorkerQuery(wb, bob_, "bob", "SELECT text FROM notes");
  ASSERT_EQ(received_.size(), 2u);
  std::vector<SqlValue> row;
  ASSERT_TRUE(DecodeDbRow(received_[0].msg.data, &row));
  EXPECT_EQ(row[0].AsText(), "public-profile");
}

// --- Reboot: durable tables, hidden USER_ID column, label bindings -----------

// A minimal one-boot world around a (possibly persistent) dbproxy: a
// stand-in idd holding the priv-port capability, plus worker helpers. Each
// instance is one boot; destroying it drains the proxy's store, and a new
// instance over the same directory is the reboot.
class ProxyBoot {
 public:
  ProxyBoot(const std::string& store_dir, uint64_t boot_key,
            const std::vector<uint64_t>& recovered_stars = {})
      : kernel_(boot_key) {
    DbproxyOptions opts;
    opts.store_dir = store_dir;
    auto code = std::make_unique<DbproxyProcess>(opts);
    proxy_ = code.get();
    SpawnArgs args;
    args.name = "dbproxy";
    args.component = Component::kOkdb;
    kernel_.CreateProcess(std::move(code), args);

    // The stand-in idd. On a reboot the trusted boot path re-grants the ⋆
    // set for every recovered compartment (exactly what the launcher does
    // with IddProcess::RecoveredStars) and retires the handles from the
    // generator.
    SpawnArgs iargs;
    iargs.name = "idd";
    for (const uint64_t h : recovered_stars) {
      iargs.send_label.Set(Handle::FromValue(h), Level::kStar);
      kernel_.ReserveRecoveredHandle(Handle::FromValue(h));
    }
    idd_ = kernel_.CreateProcess(std::make_unique<RecorderProcess>(&received_), iargs);
    kernel_.WithProcessContext(idd_, [&](ProcessContext& ctx) {
      idd_port_ = ctx.NewPort(Label::Top());
      EXPECT_EQ(ctx.SetPortLabel(idd_port_, Label::Top()), Status::kOk);
    });
    Process* proxy_proc = kernel_.FindProcessByName("dbproxy");
    kernel_.WithProcessContext(proxy_proc->id, [&](ProcessContext& ctx) {
      SendArgs gargs;
      gargs.decont_send = Label({{proxy_->priv_port(), Level::kStar}}, Level::kL3);
      Message m;
      m.type = 999;
      EXPECT_EQ(ctx.Send(idd_port_, std::move(m), gargs), Status::kOk);
    });
    kernel_.RunUntilIdle();
    received_.clear();
  }

  void PrivExec(const std::string& sql) {
    kernel_.WithProcessContext(idd_, [&](ProcessContext& ctx) {
      Message q;
      q.type = MessageType::kQuery;
      q.words = {1, 0};
      q.data = "\n" + sql;
      q.reply_port = idd_port_;
      EXPECT_EQ(ctx.Send(proxy_->priv_port(), std::move(q)), Status::kOk);
    });
    kernel_.RunUntilIdle();
    ASSERT_FALSE(received_.empty());
    EXPECT_EQ(received_.back().msg.words[1], 0u) << sql;
    received_.clear();
  }

  // Binds `username` to explicit handle values (fresh on boot 1, the
  // recovered values on later boots — what idd's kBind replay sends).
  void Bind(const std::string& username, uint64_t taint, uint64_t grant, int64_t uid) {
    kernel_.WithProcessContext(idd_, [&](ProcessContext& ctx) {
      Message bind;
      bind.type = MessageType::kBind;
      bind.data = username;
      bind.words = {taint, grant, static_cast<uint64_t>(uid)};
      SendArgs args;
      args.decont_send = Label({{Handle::FromValue(taint), Level::kStar}}, Level::kL3);
      args.decont_receive = Label({{Handle::FromValue(taint), Level::kL3}}, Level::kStar);
      EXPECT_EQ(ctx.Send(proxy_->priv_port(), std::move(bind), args), Status::kOk);
    });
    kernel_.RunUntilIdle();
    received_.clear();
  }

  // A reader process cleared for the given taints (boot-time clearance), so
  // it can observe which taints recovered rows actually carry; `stars`
  // grants speak-for privilege (uG ⋆) so the process can pass write bounds.
  ProcessId MakeReader(const std::string& name, const std::vector<uint64_t>& cleared,
                       const std::vector<uint64_t>& stars = {}) {
    SpawnArgs args;
    args.name = name;
    for (const uint64_t t : cleared) {
      args.recv_label.Set(Handle::FromValue(t), Level::kL3);
    }
    for (const uint64_t s : stars) {
      args.send_label.Set(Handle::FromValue(s), Level::kStar);
    }
    const ProcessId pid =
        kernel_.CreateProcess(std::make_unique<RecorderProcess>(&received_), args);
    kernel_.WithProcessContext(pid, [&](ProcessContext& ctx) {
      reader_port_ = ctx.NewPort(Label::Top());
      EXPECT_EQ(ctx.SetPortLabel(reader_port_, Label::Top()), Status::kOk);
    });
    return pid;
  }

  void Query(ProcessId from, const std::string& username, const std::string& sql,
             const SendArgs& args = SendArgs()) {
    kernel_.WithProcessContext(from, [&](ProcessContext& ctx) {
      Message q;
      q.type = MessageType::kQuery;
      q.words = {1, 0};
      q.data = username + "\n" + sql;
      q.reply_port = reader_port_;
      EXPECT_EQ(ctx.Send(proxy_->query_port(), std::move(q), args), Status::kOk);
    });
    kernel_.RunUntilIdle();
  }

  Kernel kernel_;
  DbproxyProcess* proxy_ = nullptr;
  ProcessId idd_ = kNoProcess;
  Handle idd_port_;
  Handle reader_port_;
  std::vector<RecorderProcess::Received> received_;
};

TEST(DbproxyRebootTest, TablesUserIdColumnAndBindingsSurviveReboot) {
  asbestos::testing::TempDir dir;
  const std::string store_dir = dir.path() + "/dbproxy";
  uint64_t alice_t = 0;
  uint64_t alice_g = 0;
  uint64_t bob_t = 0;
  uint64_t bob_g = 0;

  {  // --- boot 1: schema, bindings, and worker writes ----------------------
    ProxyBoot boot(store_dir, 0xb001);
    boot.PrivExec("CREATE TABLE notes (text TEXT)");
    boot.kernel_.WithProcessContext(boot.idd_, [&](ProcessContext& ctx) {
      alice_t = ctx.NewHandle().value();
      alice_g = ctx.NewHandle().value();
      bob_t = ctx.NewHandle().value();
      bob_g = ctx.NewHandle().value();
    });
    boot.Bind("alice", alice_t, alice_g, 1);
    boot.Bind("bob", bob_t, bob_g, 2);
    // Worker writes: the proxy stamps the hidden USER_ID column. The writer
    // holds each grant at ⋆ so its verify label can prove uG at 0.
    const ProcessId w = boot.MakeReader("writer", {alice_t, bob_t}, {alice_g, bob_g});
    SendArgs alice_v;
    alice_v.verify = Label({{Handle::FromValue(alice_t), Level::kL3},
                            {Handle::FromValue(alice_g), Level::kL0}},
                           Level::kL2);
    boot.Query(w, "alice", "INSERT INTO notes (text) VALUES ('from-alice')", alice_v);
    SendArgs bob_v;
    bob_v.verify = Label({{Handle::FromValue(bob_t), Level::kL3},
                          {Handle::FromValue(bob_g), Level::kL0}},
                         Level::kL2);
    boot.Query(w, "bob", "INSERT INTO notes (text) VALUES ('from-bob')", bob_v);
    ASSERT_GE(boot.received_.size(), 2u);
    EXPECT_EQ(boot.received_.back().msg.words[1], 0u);
    // The store picked up schema, both rows' table image, and both
    // bindings; the group-commit hook flushed them at end of pump.
    ASSERT_NE(boot.proxy_->store(), nullptr);
    EXPECT_GE(boot.proxy_->store()->size(), 4u);
    EXPECT_EQ(boot.proxy_->store()->dirty_shard_count(), 0u);
  }  // boot 1 dies; the store destructor drains the pipeline

  {  // --- boot 2: everything is back, labels included ----------------------
    ProxyBoot boot(store_dir, 0xb002, {alice_t, alice_g, bob_t, bob_g});
    EXPECT_EQ(boot.proxy_->recovered_bindings(), 2u);

    // The hidden column recovered as part of the schema: a worker still
    // cannot name it.
    const ProcessId probe = boot.MakeReader("probe", {alice_t});
    boot.Bind("alice", alice_t, alice_g, 1);  // idd's kBind replay
    boot.Query(probe, "alice", "SELECT USER_ID FROM notes");
    ASSERT_FALSE(boot.received_.empty());
    EXPECT_EQ(boot.received_.back().msg.type, MessageType::kDone);
    EXPECT_NE(boot.received_.back().msg.words[1], 0u) << "USER_ID must stay hidden";
    boot.received_.clear();

    // A reader cleared for BOTH users' recovered taints sees both recovered
    // rows, each tainted with the ORIGINAL owner's handle — the per-user
    // label bindings came back from the proxy's own store (bob was never
    // re-bound this boot).
    const ProcessId reader = boot.MakeReader("reader", {alice_t, bob_t});
    boot.Query(reader, "alice", "SELECT text FROM notes");
    std::vector<std::string> rows;
    bool saw_bob_taint = false;
    for (const auto& r : boot.received_) {
      if (r.msg.type == MessageType::kRow) {
        std::vector<SqlValue> row;
        ASSERT_TRUE(DecodeDbRow(r.msg.data, &row));
        ASSERT_EQ(row.size(), 1u);
        rows.push_back(row[0].AsText());
        if (r.send_label_after.Get(Handle::FromValue(bob_t)) == Level::kL3) {
          saw_bob_taint = true;
        }
      }
    }
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0], "from-alice");
    EXPECT_EQ(rows[1], "from-bob");
    EXPECT_TRUE(saw_bob_taint) << "bob's row must carry his recovered taint";
    boot.received_.clear();

    // Kernel isolation still filters: a reader cleared only for alice never
    // receives bob's row and cannot tell it exists.
    const ProcessId alice_only = boot.MakeReader("alice-only", {alice_t});
    boot.Query(alice_only, "alice", "SELECT text FROM notes");
    size_t row_count = 0;
    for (const auto& r : boot.received_) {
      row_count += r.msg.type == MessageType::kRow ? 1 : 0;
    }
    EXPECT_EQ(row_count, 1u);
  }
}

TEST_F(DbproxyTest, RowCodecRoundTrip) {
  std::vector<SqlValue> row;
  row.emplace_back(SqlValue(int64_t{-42}));
  row.emplace_back(SqlValue(std::string("text with : colons and \n newlines")));
  row.emplace_back(SqlValue());
  row.emplace_back(SqlValue(std::string("")));
  std::vector<SqlValue> decoded;
  ASSERT_TRUE(DecodeDbRow(EncodeDbRow(row), &decoded));
  ASSERT_EQ(decoded.size(), row.size());
  for (size_t i = 0; i < row.size(); ++i) {
    EXPECT_EQ(decoded[i].Compare(row[i]), 0);
  }
  // Malformed inputs are rejected, not crashed on.
  EXPECT_FALSE(DecodeDbRow("x:3:abc", &decoded));
  EXPECT_FALSE(DecodeDbRow("t:999:short", &decoded));
  EXPECT_FALSE(DecodeDbRow("t:abc:x", &decoded));
  EXPECT_FALSE(DecodeDbRow("garbage", &decoded));
}

}  // namespace
}  // namespace asbestos
