// The durable labeled store: WAL framing, crash recovery, snapshot
// compaction, and memory accounting.
#include "src/store/store.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "src/store/label_codec.h"
#include "src/store/wal.h"
#include "tests/test_util.h"

namespace asbestos {
namespace {

using testing::TempDir;

Handle H(uint64_t v) { return Handle::FromValue(v); }

void TruncateFileBy(const std::string& path, uint64_t bytes) {
  FILE* f = ::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  ::fseek(f, 0, SEEK_END);
  const long size = ::ftell(f);
  ::fclose(f);
  ASSERT_GT(static_cast<uint64_t>(size), bytes);
  ASSERT_EQ(::truncate(path.c_str(), size - static_cast<long>(bytes)), 0);
}

void CorruptFileByteAt(const std::string& path, long offset) {
  FILE* f = ::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ::fseek(f, offset, SEEK_SET);
  const int c = ::fgetc(f);
  ::fseek(f, offset, SEEK_SET);
  ::fputc(c ^ 0xFF, f);
  ::fclose(f);
}

TEST(Crc32Test, KnownVector) {
  // The standard CRC-32 check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(WalTest, AppendThenRecover) {
  TempDir dir;
  const std::string path = dir.path() + "/wal";
  {
    Wal wal;
    ASSERT_EQ(wal.Open(path, [](std::string_view) { FAIL() << "fresh log has no records"; }),
              Status::kOk);
    ASSERT_EQ(wal.Append("one"), Status::kOk);
    ASSERT_EQ(wal.Append(""), Status::kOk);  // empty records are legal
    ASSERT_EQ(wal.Append(std::string(100000, 'x')), Status::kOk);
    ASSERT_EQ(wal.Sync(), Status::kOk);
  }
  Wal wal;
  std::vector<std::string> records;
  ASSERT_EQ(wal.Open(path, [&](std::string_view r) { records.emplace_back(r); }), Status::kOk);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], "one");
  EXPECT_EQ(records[1], "");
  EXPECT_EQ(records[2].size(), 100000u);
  EXPECT_EQ(wal.dropped_tail_bytes(), 0u);
}

TEST(WalTest, TornTailIsRepaired) {
  TempDir dir;
  const std::string path = dir.path() + "/wal";
  {
    Wal wal;
    ASSERT_EQ(wal.Open(path, [](std::string_view) {}), Status::kOk);
    ASSERT_EQ(wal.Append("first"), Status::kOk);
    ASSERT_EQ(wal.Append("second"), Status::kOk);
    ASSERT_EQ(wal.Append("third-will-be-torn"), Status::kOk);
  }
  // A crash mid-append leaves a partial final frame.
  TruncateFileBy(path, 4);
  std::vector<std::string> records;
  Wal wal;
  ASSERT_EQ(wal.Open(path, [&](std::string_view r) { records.emplace_back(r); }), Status::kOk);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1], "second");
  EXPECT_GT(wal.dropped_tail_bytes(), 0u);
  // The log is clean again: appends after repair recover fine.
  ASSERT_EQ(wal.Append("fourth"), Status::kOk);
  wal.Close();
  records.clear();
  Wal wal2;
  ASSERT_EQ(wal2.Open(path, [&](std::string_view r) { records.emplace_back(r); }), Status::kOk);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[2], "fourth");
  EXPECT_EQ(wal2.dropped_tail_bytes(), 0u);
}

TEST(WalTest, CorruptFrameStopsReplay) {
  TempDir dir;
  const std::string path = dir.path() + "/wal";
  {
    Wal wal;
    ASSERT_EQ(wal.Open(path, [](std::string_view) {}), Status::kOk);
    ASSERT_EQ(wal.Append("aaaaaaaa"), Status::kOk);
    ASSERT_EQ(wal.Append("bbbbbbbb"), Status::kOk);
  }
  // Flip a payload byte of the first record: its CRC fails, and recovery
  // must drop it AND everything after (the tail cannot be trusted once
  // framing is lost).
  CorruptFileByteAt(path, 8 + 2);
  std::vector<std::string> records;
  Wal wal;
  ASSERT_EQ(wal.Open(path, [&](std::string_view r) { records.emplace_back(r); }), Status::kOk);
  EXPECT_TRUE(records.empty());
  EXPECT_GT(wal.dropped_tail_bytes(), 0u);
}

StoreOptions Opts(const TempDir& dir) {
  StoreOptions o;
  o.dir = dir.path() + "/store";
  return o;
}

TEST(DurableStoreTest, PutGetEraseRoundTrip) {
  TempDir dir;
  const Label secrecy({{H(42), Level::kL3}}, Level::kStar);
  const Label integrity({{H(43), Level::kL0}}, Level::kL3);
  {
    auto store = DurableStore::Open(Opts(dir));
    ASSERT_TRUE(store.ok());
    ASSERT_EQ(store.value()->Put("k1", "v1", secrecy, integrity), Status::kOk);
    ASSERT_EQ(store.value()->Put("k2", "v2", Label::Bottom(), Label::Top()), Status::kOk);
    ASSERT_EQ(store.value()->Put("k1", "v1-updated", secrecy, integrity), Status::kOk);
    ASSERT_EQ(store.value()->Erase("k2"), Status::kOk);
    EXPECT_EQ(store.value()->Erase("missing"), Status::kNotFound);
  }
  auto store = DurableStore::Open(Opts(dir));
  ASSERT_TRUE(store.ok());
  ASSERT_EQ(store.value()->size(), 1u);
  const StoreRecord* r = store.value()->Get("k1");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->value, "v1-updated");
  EXPECT_TRUE(r->secrecy.Equals(secrecy));
  EXPECT_TRUE(r->integrity.Equals(integrity));
  r->secrecy.CheckRep();
  r->integrity.CheckRep();
  EXPECT_EQ(store.value()->log_records_replayed(), 4u);
}

TEST(DurableStoreTest, CrashMidAppendRecoversValidPrefix) {
  TempDir dir;
  {
    auto store = DurableStore::Open(Opts(dir));
    ASSERT_TRUE(store.ok());
    ASSERT_EQ(store.value()->Put("a", "1", Label::Bottom(), Label::Top()), Status::kOk);
    ASSERT_EQ(store.value()->Put("b", "2", Label::Bottom(), Label::Top()), Status::kOk);
    ASSERT_EQ(store.value()->Put("c", "3", Label::Bottom(), Label::Top()), Status::kOk);
  }
  TruncateFileBy(dir.path() + "/store/wal", 3);  // tear the last Put
  auto store = DurableStore::Open(Opts(dir));
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store.value()->size(), 2u);
  EXPECT_NE(store.value()->Get("a"), nullptr);
  EXPECT_NE(store.value()->Get("b"), nullptr);
  EXPECT_EQ(store.value()->Get("c"), nullptr);
  EXPECT_GT(store.value()->torn_tail_bytes_dropped(), 0u);
  // The repaired store keeps working.
  ASSERT_EQ(store.value()->Put("c", "3-again", Label::Bottom(), Label::Top()), Status::kOk);
}

TEST(DurableStoreTest, CompactionIsEquivalent) {
  TempDir dir;
  const Label secrecy({{H(7), Level::kL2}}, Level::kStar);
  {
    auto store = DurableStore::Open(Opts(dir));
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_EQ(store.value()->Put("key" + std::to_string(i % 10), "v" + std::to_string(i),
                                   secrecy, Label::Top()),
                Status::kOk);
    }
    ASSERT_EQ(store.value()->Erase("key3"), Status::kOk);
    ASSERT_EQ(store.value()->Compact(), Status::kOk);
    EXPECT_EQ(store.value()->wal_bytes(), 0u) << "compaction truncates the log";
    // Post-compaction mutations land in the fresh log.
    ASSERT_EQ(store.value()->Put("post", "compact", Label::Bottom(), Label::Top()), Status::kOk);
  }
  auto store = DurableStore::Open(Opts(dir));
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store.value()->snapshot_records_loaded(), 9u);
  EXPECT_EQ(store.value()->log_records_replayed(), 1u);
  ASSERT_EQ(store.value()->size(), 10u);
  EXPECT_EQ(store.value()->Get("key4")->value, "v44");
  EXPECT_EQ(store.value()->Get("post")->value, "compact");
  EXPECT_EQ(store.value()->Get("key3"), nullptr);
  EXPECT_TRUE(store.value()->Get("key5")->secrecy.Equals(secrecy));
}

TEST(DurableStoreTest, AutoCompactionBoundsTheLog) {
  TempDir dir;
  StoreOptions opts = Opts(dir);
  opts.compact_min_log_records = 16;
  opts.compact_factor = 4;
  auto store = DurableStore::Open(std::move(opts));
  ASSERT_TRUE(store.ok());
  // One hot key rewritten many times: the log would grow without bound, the
  // map stays at size 1, so auto-compaction must kick in.
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(store.value()->Put("hot", std::string(100, 'x'), Label::Bottom(), Label::Top()),
              Status::kOk);
  }
  EXPECT_GT(store.value()->compactions(), 0u);
  EXPECT_LT(store.value()->wal_bytes(), 16u * 200u);
}

TEST(DurableStoreTest, ReplayedRecordsStopCountingAfterCompaction) {
  TempDir dir;
  {  // Build a log-heavy store with auto-compaction effectively disabled.
    StoreOptions opts = Opts(dir);
    opts.compact_min_log_records = ~0ULL;
    auto store = DurableStore::Open(std::move(opts));
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_EQ(store.value()->Put("hot", "v" + std::to_string(i), Label::Bottom(), Label::Top()),
                Status::kOk);
    }
  }
  // Reopen with normal thresholds: the replayed backlog triggers one
  // compaction, after which the counter must reset — not leave the store
  // rewriting a snapshot on every subsequent mutation.
  StoreOptions opts = Opts(dir);
  opts.compact_min_log_records = 32;
  opts.compact_factor = 4;
  auto store = DurableStore::Open(std::move(opts));
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store.value()->log_records_replayed(), 100u);
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(store.value()->Put("hot", "post", Label::Bottom(), Label::Top()), Status::kOk);
  }
  EXPECT_EQ(store.value()->compactions(), 1u)
      << "replayed records must not keep tripping the auto-compaction threshold";
}

TEST(DurableStoreTest, CorruptSnapshotRefusesToOpen) {
  TempDir dir;
  {
    auto store = DurableStore::Open(Opts(dir));
    ASSERT_TRUE(store.ok());
    ASSERT_EQ(store.value()->Put("k", "v", Label::Bottom(), Label::Top()), Status::kOk);
    ASSERT_EQ(store.value()->Compact(), Status::kOk);
  }
  CorruptFileByteAt(dir.path() + "/store/snapshot", 16);
  auto store = DurableStore::Open(Opts(dir));
  EXPECT_FALSE(store.ok()) << "a corrupt snapshot must fail loudly, not load partially";
}

// --- Sharding ---------------------------------------------------------------

StoreOptions ShardedOpts(const TempDir& dir, uint32_t shards) {
  StoreOptions o = Opts(dir);
  o.shards = shards;
  return o;
}

// Writes keys until every shard of `store` holds at least one record,
// returning the keys written. Routing is a stable hash, so a few dozen keys
// cover four shards with overwhelming probability.
std::vector<std::string> FillEveryShard(DurableStore* store) {
  std::vector<std::string> keys;
  for (int i = 0; i < 256; ++i) {
    const std::string key = "key" + std::to_string(i);
    EXPECT_EQ(store->Put(key, "value" + std::to_string(i), Label::Bottom(), Label::Top()),
              Status::kOk);
    keys.push_back(key);
    bool all_populated = true;
    for (uint32_t k = 0; k < store->shard_count(); ++k) {
      all_populated = all_populated && store->shard_stats(k).records > 0;
    }
    if (all_populated && keys.size() >= 16) {
      return keys;
    }
  }
  ADD_FAILURE() << "256 keys failed to cover every shard — routing is broken";
  return keys;
}

TEST(ShardedStoreTest, SpreadsRecordsAndRoundTrips) {
  TempDir dir;
  const Label secrecy({{H(42), Level::kL3}}, Level::kStar);
  std::vector<std::string> keys;
  {
    auto store = DurableStore::Open(ShardedOpts(dir, 4));
    ASSERT_TRUE(store.ok());
    ASSERT_EQ(store.value()->shard_count(), 4u);
    keys = FillEveryShard(store.value().get());
    ASSERT_EQ(store.value()->Put("labeled", "v", secrecy, Label::Top()), Status::kOk);
  }
  // The on-disk layout is the documented one: a stamp plus per-shard dirs.
  EXPECT_EQ(::access((dir.path() + "/store/shards").c_str(), F_OK), 0);
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(::access((dir.path() + "/store/shard-" + std::to_string(k) + "/wal").c_str(), F_OK),
              0);
  }
  // Reopen requesting a DIFFERENT count: the creation stamp must win, or
  // every key would rehash into the wrong shard.
  auto store = DurableStore::Open(ShardedOpts(dir, 16));
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store.value()->shard_count(), 4u);
  ASSERT_EQ(store.value()->size(), keys.size() + 1);
  for (const std::string& key : keys) {
    ASSERT_NE(store.value()->Get(key), nullptr) << key;
  }
  const StoreRecord* r = store.value()->Get("labeled");
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->secrecy.Equals(secrecy));
  // ForEach visits everything exactly once.
  size_t visited = 0;
  store.value()->ForEach([&](const std::string&, const StoreRecord&) { ++visited; });
  EXPECT_EQ(visited, keys.size() + 1);
}

TEST(ShardedStoreTest, LegacyFlatStoreAdoptsSingleShard) {
  TempDir dir;
  {  // A PR-1-era store: flat layout, no shard stamp.
    auto store = DurableStore::Open(Opts(dir));
    ASSERT_TRUE(store.ok());
    ASSERT_EQ(store.value()->Put("old", "data", Label::Bottom(), Label::Top()), Status::kOk);
  }
  ASSERT_NE(::access((dir.path() + "/store/wal").c_str(), F_OK), -1);
  // Opening with shards requested must not strand the flat-layout data.
  auto store = DurableStore::Open(ShardedOpts(dir, 8));
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store.value()->shard_count(), 1u);
  ASSERT_NE(store.value()->Get("old"), nullptr);
  EXPECT_EQ(store.value()->Get("old")->value, "data");
}

TEST(ShardedStoreTest, TornTailInOneShardDoesNotBlockSiblings) {
  TempDir dir;
  std::vector<std::string> keys;
  uint32_t torn_shard = 0;
  std::string torn_key;
  {
    auto store = DurableStore::Open(ShardedOpts(dir, 4));
    ASSERT_TRUE(store.ok());
    keys = FillEveryShard(store.value().get());
    // Tear the shard holding the LAST key whose append is that shard's tail
    // record — use the final key written and tear its shard's log.
    torn_key = keys.back();
    torn_shard = store.value()->ShardIndexOf(torn_key);
  }
  TruncateFileBy(dir.path() + "/store/shard-" + std::to_string(torn_shard) + "/wal", 3);
  auto store = DurableStore::Open(ShardedOpts(dir, 4));
  ASSERT_TRUE(store.ok()) << "a torn shard must not fail the whole open";
  // Exactly the torn shard reports dropped bytes; every sibling recovers
  // its full contents.
  for (uint32_t k = 0; k < 4; ++k) {
    const auto stats = store.value()->shard_stats(k);
    if (k == torn_shard) {
      EXPECT_GT(stats.torn_tail_bytes_dropped, 0u);
    } else {
      EXPECT_EQ(stats.torn_tail_bytes_dropped, 0u) << "sibling shard " << k;
    }
  }
  // The torn shard lost exactly its tail record; every other key survives.
  EXPECT_EQ(store.value()->Get(torn_key), nullptr);
  for (const std::string& key : keys) {
    if (key != torn_key && store.value()->ShardIndexOf(key) != torn_shard) {
      EXPECT_NE(store.value()->Get(key), nullptr) << key;
    }
  }
  // And the repaired shard accepts writes again.
  ASSERT_EQ(store.value()->Put(torn_key, "again", Label::Bottom(), Label::Top()), Status::kOk);
}

TEST(ShardedStoreTest, CorruptShardStampRefusesToOpen) {
  TempDir dir;
  {
    auto store = DurableStore::Open(ShardedOpts(dir, 4));
    ASSERT_TRUE(store.ok());
  }
  FILE* f = ::fopen((dir.path() + "/store/shards").c_str(), "w");
  ASSERT_NE(f, nullptr);
  ::fputs("not-a-number", f);
  ::fclose(f);
  auto store = DurableStore::Open(ShardedOpts(dir, 4));
  EXPECT_FALSE(store.ok()) << "an unreadable shard stamp must not be guessed around";
}

// --- Group commit -----------------------------------------------------------

TEST(GroupCommitTest, SyncFlushesOnlyDirtyShards) {
  TempDir dir;
  auto store = DurableStore::Open(ShardedOpts(dir, 4));
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store.value()->dirty_shard_count(), 0u);
  // One key dirties exactly its own shard.
  ASSERT_EQ(store.value()->Put("solo", "v", Label::Bottom(), Label::Top()), Status::kOk);
  EXPECT_EQ(store.value()->dirty_shard_count(), 1u);
  EXPECT_TRUE(store.value()->shard_stats(store.value()->ShardIndexOf("solo")).dirty);
  // A batch across every shard dirties them all; one Sync clears them all.
  FillEveryShard(store.value().get());
  EXPECT_EQ(store.value()->dirty_shard_count(), 4u);
  ASSERT_EQ(store.value()->Sync(), Status::kOk);
  EXPECT_EQ(store.value()->dirty_shard_count(), 0u);
  // Sync with nothing dirty stays a no-op (and keeps returning kOk).
  ASSERT_EQ(store.value()->Sync(), Status::kOk);
  // Erase dirties like Put does.
  ASSERT_EQ(store.value()->Erase("solo"), Status::kOk);
  EXPECT_EQ(store.value()->dirty_shard_count(), 1u);
}

TEST(GroupCommitTest, CompactionClearsDirtiness) {
  TempDir dir;
  auto store = DurableStore::Open(ShardedOpts(dir, 2));
  ASSERT_TRUE(store.ok());
  FillEveryShard(store.value().get());
  ASSERT_GT(store.value()->dirty_shard_count(), 0u);
  // Compact folds the log into the snapshot and resets (syncs) it: nothing
  // is left pending.
  ASSERT_EQ(store.value()->Compact(), Status::kOk);
  EXPECT_EQ(store.value()->dirty_shard_count(), 0u);
}

TEST(GroupCommitTest, PipelinedSyncOverlapsAndDrains) {
  TempDir dir;
  {
    auto store = DurableStore::Open(ShardedOpts(dir, 4));
    ASSERT_TRUE(store.ok());
    FillEveryShard(store.value().get());
    // The pipelined commit takes responsibility for the batch immediately
    // (dirty marks clear) and flushes in the background.
    ASSERT_EQ(store.value()->SyncPipelined(), Status::kOk);
    EXPECT_EQ(store.value()->dirty_shard_count(), 0u);
    // Appends landing during the in-flight flush re-dirty their shard and
    // belong to the next round.
    ASSERT_EQ(store.value()->Put("late", "v", Label::Bottom(), Label::Top()), Status::kOk);
    EXPECT_EQ(store.value()->dirty_shard_count(), 1u);
    ASSERT_EQ(store.value()->SyncPipelined(), Status::kOk);  // acks round 1
    // Blocking Sync drains the pipeline: on return everything is durable.
    ASSERT_EQ(store.value()->Sync(), Status::kOk);
    EXPECT_FALSE(store.value()->flush_in_flight());
  }
  auto reopened = DurableStore::Open(ShardedOpts(dir, 4));
  ASSERT_TRUE(reopened.ok());
  EXPECT_NE(reopened.value()->Get("late"), nullptr);
}

TEST(GroupCommitTest, DestructorDrainsTheInflightFlush) {
  // Destroy-then-reopen is the reboot idiom everywhere else in the tree:
  // the destructor must finish the background flush, so a pipelined batch
  // with no later Sync() still lands on disk.
  TempDir dir;
  std::vector<std::string> keys;
  {
    auto store = DurableStore::Open(ShardedOpts(dir, 4));
    ASSERT_TRUE(store.ok());
    keys = FillEveryShard(store.value().get());
    ASSERT_EQ(store.value()->SyncPipelined(), Status::kOk);
  }
  auto reopened = DurableStore::Open(ShardedOpts(dir, 4));
  ASSERT_TRUE(reopened.ok());
  for (const std::string& key : keys) {
    EXPECT_NE(reopened.value()->Get(key), nullptr) << key;
  }
}

TEST(DurableStoreTest, MemStatsTrackLiveBytes) {
  const int64_t base = GetStoreMemStats().live_bytes;
  const int64_t base_records = GetStoreMemStats().live_records;
  TempDir dir;
  {
    auto store = DurableStore::Open(Opts(dir));
    ASSERT_TRUE(store.ok());
    ASSERT_EQ(store.value()->Put("key", std::string(1000, 'v'), Label::Bottom(), Label::Top()),
              Status::kOk);
    EXPECT_EQ(GetStoreMemStats().live_records, base_records + 1);
    EXPECT_GE(GetStoreMemStats().live_bytes, base + 1000);
    ASSERT_EQ(store.value()->Erase("key"), Status::kOk);
    EXPECT_EQ(GetStoreMemStats().live_bytes, base);
    ASSERT_EQ(store.value()->Put("key2", "v", Label::Bottom(), Label::Top()), Status::kOk);
  }
  // Closing the store releases everything.
  EXPECT_EQ(GetStoreMemStats().live_bytes, base);
  EXPECT_EQ(GetStoreMemStats().live_records, base_records);
}

}  // namespace
}  // namespace asbestos
