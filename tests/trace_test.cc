// Observability plane (src/obs): the metrics registry, the flow-aware trace
// ring, and the clearance gate on reading it back.
//
// The end-to-end tests drive the real OKWS suite and the real replication
// protocol and check the ISSUE acceptance criteria directly: one request
// produces a complete span chain with monotone virtual-clock timestamps; a
// reader below the request's secrecy level observes zero of its events (and
// cannot even count them); replication frames carry the session's origin
// trace id on every hop.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/provenance.h"
#include "src/obs/trace.h"
#include "src/okws/okws_world.h"
#include "src/okws/services.h"
#include "src/replication/replica.h"
#include "src/replication/source.h"
#include "src/replication/wire.h"
#include "src/sim/cycles.h"
#include "src/store/store.h"
#include "tests/test_util.h"

namespace asbestos {
namespace {

using testing::TempDir;

Handle H(uint64_t v) { return Handle::FromValue(v); }

// --- Metrics registry --------------------------------------------------------

TEST(MetricsRegistryTest, CounterGaugeHistogramBasics) {
  obs::Registry& reg = obs::Registry::Get();

  obs::Counter& c = reg.counter("test.reg.counter");
  c.Reset();
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name returns the same object: call sites can cache references.
  EXPECT_EQ(&reg.counter("test.reg.counter"), &c);

  obs::Gauge& g = reg.gauge("test.reg.gauge");
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);

  obs::CycleHistogram& h = reg.histogram("test.reg.hist");
  h.Reset();
  for (uint64_t v : {1u, 2u, 4u, 1024u}) {
    h.Record(v);
  }
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1031u);
  EXPECT_EQ(h.max(), 1024u);
  EXPECT_GE(h.ApproxQuantile(0.99), h.ApproxQuantile(0.50));
  EXPECT_LE(h.ApproxQuantile(0.99), 1024u);
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndCarriesHistogramDerived) {
  obs::Registry& reg = obs::Registry::Get();
  reg.counter("test.snap.b").Reset();
  reg.counter("test.snap.a").Reset();
  reg.counter("test.snap.a").Add(7);
  reg.histogram("test.snap.hist").Reset();
  reg.histogram("test.snap.hist").Record(100);

  const auto snap = reg.Snapshot();
  // std::map iteration: deterministic lexicographic key order.
  std::vector<std::string> keys;
  for (const auto& [k, v] : snap) {
    keys.push_back(k);
  }
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_DOUBLE_EQ(snap.at("test.snap.a"), 7.0);
  EXPECT_DOUBLE_EQ(snap.at("test.snap.b"), 0.0);
  EXPECT_DOUBLE_EQ(snap.at("test.snap.hist.count"), 1.0);
  EXPECT_DOUBLE_EQ(snap.at("test.snap.hist.max"), 100.0);

  // The always-registered gauge groups (static-init registrations in the
  // library) surface the label-cache, intern, and cycle-clock families.
  EXPECT_EQ(snap.count("kernel.label_cache.hits"), 1u);
  EXPECT_EQ(snap.count("labels.intern.probes"), 1u);
  EXPECT_EQ(snap.count("cycles.now"), 1u);

  const std::string json = reg.SnapshotJson();
  EXPECT_NE(json.find("\"test.snap.a\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"cycles.now\""), std::string::npos);
}

TEST(MetricsRegistryTest, GaugeGroupsUnregisterCleanly) {
  obs::Registry& reg = obs::Registry::Get();
  const uint64_t id = reg.RegisterGauges(
      [](obs::GaugeSink& sink) { sink.Set("test.group.transient", 5.0); });
  EXPECT_EQ(reg.Snapshot().count("test.group.transient"), 1u);
  reg.UnregisterGauges(id);
  EXPECT_EQ(reg.Snapshot().count("test.group.transient"), 0u);
}

// --- Trace ring --------------------------------------------------------------

class TraceRingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::TraceRing::SetEnabled(true);
    obs::TraceRing::Get().Clear();
  }
  void TearDown() override {
    obs::TraceRing::Get().Clear();
    obs::TraceRing::SetEnabled(false);
  }
};

TEST_F(TraceRingTest, DisabledEmitIsANoOp) {
  obs::TraceRing::SetEnabled(false);
  const uint64_t tid = obs::TraceRing::Get().MintTraceId();
  obs::TraceRing::Get().Emit(tid, "test", "test.span", "", Label::Bottom());
  EXPECT_TRUE(obs::TraceRing::Get().events().empty());
}

TEST_F(TraceRingTest, CumulativeLabelIsLubAndSurvivesEviction) {
  obs::TraceRing::Get().SetCapacity(2);
  const uint64_t tid = obs::TraceRing::Get().MintTraceId();
  const Label high({{H(7), Level::kL3}}, Level::kStar);
  obs::TraceRing::Get().Emit(tid, "test", "a", "", high);
  obs::TraceRing::Get().Emit(tid, "test", "b", "", Label::Bottom());
  obs::TraceRing::Get().Emit(tid, "test", "c", "", Label::Bottom());
  obs::TraceRing::Get().Emit(tid, "test", "d", "", Label::Bottom());
  // Ring holds only the last two events; the high "a" event is long gone.
  ASSERT_EQ(obs::TraceRing::Get().events().size(), 2u);
  EXPECT_EQ(obs::TraceRing::Get().events().front().name, "c");
  // But the cumulative label remembers: the trace stays as secret as its
  // most secret event ever, so eviction opens no declassification hole.
  EXPECT_TRUE(high.Leq(obs::TraceRing::Get().CumulativeLabel(tid)));
  obs::TraceRing::Get().SetCapacity(8192);
}

TEST_F(TraceRingTest, LowReaderSeesNeitherEventsNorCounts) {
  const Label high({{H(7), Level::kL3}}, Level::kStar);
  const uint64_t secret = obs::TraceRing::Get().MintTraceId();
  const uint64_t pub = obs::TraceRing::Get().MintTraceId();
  // The secret trace starts with an innocuous Bottom event (netd.accept
  // style) before it touches anything labeled — exactly the shape a
  // counting channel would exploit.
  obs::TraceRing::Get().Emit(secret, "netd", "netd.accept", "", Label::Bottom());
  obs::TraceRing::Get().Emit(secret, "worker", "worker.request", "", high);
  obs::TraceRing::Get().Emit(pub, "netd", "netd.accept", "", Label::Bottom());

  obs::TraceReader low(Label::DefaultReceive());  // clearance {2}
  obs::TraceReader top(Label::Top());

  EXPECT_FALSE(low.CanObserve(secret));
  EXPECT_TRUE(low.CanObserve(pub));
  EXPECT_TRUE(top.CanObserve(secret));

  // The low reader must not see the secret trace's Bottom-labeled accept
  // event either: filtering is by cumulative trace label, so the event
  // count is not a side channel on how many secret requests arrived.
  EXPECT_EQ(low.VisibleCount(), 1u);
  ASSERT_EQ(low.Visible().size(), 1u);
  EXPECT_EQ(low.Visible()[0].trace_id, pub);
  EXPECT_EQ(top.VisibleCount(), 3u);
  EXPECT_NE(top.VisibleJson().find("worker.request"), std::string::npos);
  EXPECT_EQ(low.VisibleJson().find("worker.request"), std::string::npos);
}

TEST_F(TraceRingTest, WraparoundNeverLeaksSecretHistoryIntoLowCounts) {
  // Force eviction with a tiny ring and interleave secret and public
  // traffic. At every point — before, during, and after wraparound — the
  // low reader's count must equal the number of PUBLIC events still
  // retained, never reflecting how many secret events passed through.
  obs::TraceRing::Get().SetCapacity(4);
  const Label high({{H(7), Level::kL3}}, Level::kStar);
  obs::TraceReader low(Label::DefaultReceive());

  const uint64_t secret = obs::TraceRing::Get().MintTraceId();
  obs::TraceRing::Get().Emit(secret, "netd", "netd.accept", "", Label::Bottom());
  obs::TraceRing::Get().Emit(secret, "worker", "worker.request", "", high);
  EXPECT_EQ(low.VisibleCount(), 0u);

  // Burn through several ring generations of secret events under public
  // cover traffic; the secret trace's early events evict, but its
  // cumulative label keeps every retained event of it invisible.
  std::vector<uint64_t> pub_tids;
  for (int round = 0; round < 3; ++round) {
    const uint64_t pub = obs::TraceRing::Get().MintTraceId();
    pub_tids.push_back(pub);
    obs::TraceRing::Get().Emit(pub, "netd", "netd.accept", "", Label::Bottom());
    obs::TraceRing::Get().Emit(secret, "worker", "worker.respond", "", Label::Bottom());
    ASSERT_EQ(obs::TraceRing::Get().events().size(),
              std::min<size_t>(4, 2 * (round + 2)));
    // Exactly the public events still in the ring are visible (capacity 4,
    // alternating emission: at most the 2 newest public events survive).
    const size_t retained_pub = std::min<size_t>(pub_tids.size(), 2);
    EXPECT_EQ(low.VisibleCount(), retained_pub) << "round " << round;
    for (const obs::SpanEvent& ev : low.Visible()) {
      EXPECT_EQ(ev.label.Get(H(7)), Level::kStar) << "no secret event leaks";
    }
  }
  // The secret trace stays as secret as its most secret event ever, even
  // though that event was evicted rounds ago.
  EXPECT_TRUE(high.Leq(obs::TraceRing::Get().CumulativeLabel(secret)));
  EXPECT_FALSE(low.CanObserve(secret));
  obs::TraceReader top(Label::Top());
  EXPECT_EQ(top.VisibleCount(), 4u);
  obs::TraceRing::Get().SetCapacity(8192);
}

// --- End-to-end: OKWS span chain --------------------------------------------

class OkwsTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    OkwsWorldConfig config;
    config.users = {{"alice", "pw-a"}, {"bob", "pw-b"}};
    config.services.push_back(
        {"echo", [] { return std::make_unique<EchoService>(); }, false, {}});
    config.services.push_back(
        {"notes", [] { return std::make_unique<NotesService>(); }, false, {}});
    config.extra_tables = {NotesService::kTableSql};
    world_ = std::make_unique<OkwsWorld>(std::move(config));
    world_->PumpUntilReady();
    obs::TraceRing::SetEnabled(true);
    obs::TraceRing::Get().Clear();
  }

  void TearDown() override {
    obs::TraceRing::Get().Clear();
    obs::TraceRing::SetEnabled(false);
  }

  HttpLoadClient::Result Fetch(const std::string& target, const std::string& user,
                               const std::string& pass) {
    HttpLoadClient client(&world_->net(), 80, 4);
    client.Enqueue(OkwsWorld::MakeRequest(target, user, pass), 0);
    world_->RunClient(&client);
    EXPECT_EQ(client.results().size(), 1u) << target << " produced no response";
    return client.results().empty() ? HttpLoadClient::Result{} : client.results()[0];
  }

  // Events of the given trace with the given span name, in emission order.
  static std::vector<obs::SpanEvent> Named(uint64_t trace_id, const std::string& name) {
    std::vector<obs::SpanEvent> out;
    for (const obs::SpanEvent& ev : obs::TraceRing::Get().events()) {
      if (ev.trace_id == trace_id && ev.name == name) {
        out.push_back(ev);
      }
    }
    return out;
  }

  std::unique_ptr<OkwsWorld> world_;
};

TEST_F(OkwsTraceTest, OneRequestProducesACompleteSpanChain) {
  const auto r = Fetch("/notes?op=add&text=buy+milk", "alice", "pw-a");
  ASSERT_EQ(r.status, 200);

  // Exactly one trace was minted (one connection), and every instrumented
  // hop stamped it: accept -> demux -> worker -> dbproxy -> respond ->
  // reply. Kernel deliveries along the way carry the same id.
  std::vector<uint64_t> ids;
  for (const obs::SpanEvent& ev : obs::TraceRing::Get().events()) {
    ASSERT_NE(ev.trace_id, 0u) << ev.name;
    ids.push_back(ev.trace_id);
  }
  ASSERT_FALSE(ids.empty());
  const uint64_t tid = ids[0];
  EXPECT_TRUE(std::all_of(ids.begin(), ids.end(),
                          [&](uint64_t id) { return id == tid; }));

  // The chain appears as an in-order subsequence of the ring (other spans
  // interleave: the idd password check issues its own dbproxy statement
  // before the worker ever sees the request).
  const char* chain[] = {"netd.accept",    "demux.dispatch", "worker.request",
                         "dbproxy.stmt",   "worker.respond", "netd.reply"};
  size_t chain_idx = 0;
  uint64_t prev_cycles = 0;
  for (const obs::SpanEvent& ev : obs::TraceRing::Get().events()) {
    if (chain_idx < std::size(chain) && ev.trace_id == tid &&
        ev.name == chain[chain_idx]) {
      // Virtual-clock timestamps are monotone along the chain.
      EXPECT_GE(ev.at_cycles, prev_cycles) << ev.name;
      prev_cycles = ev.at_cycles;
      ++chain_idx;
    }
  }
  EXPECT_EQ(chain_idx, std::size(chain))
      << "span chain incomplete; next missing: " << chain[chain_idx];

  // Hop details identify the flow without leaking payloads: the dispatch
  // names the service and user, the statement spans carry only the verb.
  EXPECT_NE(Named(tid, "demux.dispatch")[0].detail.find("service=notes"),
            std::string::npos);
  EXPECT_NE(Named(tid, "worker.request")[0].detail.find("user=alice"),
            std::string::npos);
  for (const obs::SpanEvent& stmt : Named(tid, "dbproxy.stmt")) {
    EXPECT_EQ(stmt.detail.find("buy"), std::string::npos)
        << "statement text leaked: " << stmt.detail;
  }
}

TEST_F(OkwsTraceTest, LowClearanceReaderObservesNothingOfATaintedRequest) {
  ASSERT_EQ(Fetch("/notes?op=add&text=secret", "alice", "pw-a").status, 200);
  ASSERT_FALSE(obs::TraceRing::Get().events().empty());
  const uint64_t tid = obs::TraceRing::Get().events().front().trace_id;

  // The request touched alice's row taint, so the trace's cumulative label
  // sits above an unprivileged clearance: zero events AND zero count.
  obs::TraceReader low(Label::DefaultReceive());
  EXPECT_FALSE(low.CanObserve(tid));
  EXPECT_EQ(low.VisibleCount(), 0u);
  EXPECT_TRUE(low.Visible().empty());

  obs::TraceReader top(Label::Top());
  EXPECT_TRUE(top.CanObserve(tid));
  EXPECT_EQ(top.VisibleCount(), obs::TraceRing::Get().events().size());
}

TEST_F(OkwsTraceTest, WhyTaintedExplainsARequestAcrossTheProcessSuite) {
  // The ISSUE acceptance path: run real requests through the OKWS suite,
  // then ask the ledger why a contaminated process carries a user's taint.
  // The answer must be a multi-hop chain across distinct processes ending
  // at the taint's origin, while a below-clearance reader can neither read
  // the chain nor count its edges.
  obs::ProvenanceLedger::SetEnabled(true);
  obs::ProvenanceLedger::Get().Clear();
  ASSERT_EQ(Fetch("/notes?op=add&text=buy+tarts", "alice", "pw-a").status, 200);
  ASSERT_EQ(Fetch("/notes?op=list", "alice", "pw-a").status, 200);

  // The newest contamination edge is the freshest "this process is now
  // tainted" fact the run produced; its cause carries the user taint (some
  // handle at level >= 2) that WhyTainted will chase.
  const obs::ProvenanceLedger& ledger = obs::ProvenanceLedger::Get();
  const obs::TaintEdge* newest = nullptr;
  for (const obs::TaintEdge& e : ledger.edges()) {
    if (e.kind == obs::EdgeKind::kContaminate) {
      newest = &e;
    }
  }
  ASSERT_NE(newest, nullptr) << "a tainted notes request contaminates someone";
  uint64_t taint = 0;
  for (const auto& [h, level] : newest->cause.Entries()) {
    if (LevelLeq(Level::kL2, level)) {
      taint = h.value();
      break;
    }
  }
  ASSERT_NE(taint, 0u);

  obs::ProvenanceReader top(Label::Top());
  const std::vector<obs::TaintHop> chain = top.WhyTainted(newest->subject, taint);
  ASSERT_GE(chain.size(), 2u) << "the taint crossed at least one process";
  EXPECT_EQ(chain.front().edge.subject, newest->subject);
  // The walk terminates at the taint's origin, not at an arbitrary edge.
  EXPECT_EQ(chain.back().edge.kind, obs::EdgeKind::kOrigin);
  EXPECT_TRUE(chain.back().edge.source.empty());
  // Hops link subject <- source: each hop's source is the next hop's
  // subject, so the chain really is a connected path through the suite.
  std::set<std::string> processes;
  for (size_t i = 0; i < chain.size(); ++i) {
    processes.insert(chain[i].edge.subject);
    if (i + 1 < chain.size()) {
      EXPECT_EQ(chain[i].edge.source, chain[i + 1].edge.subject) << chain[i].via;
    }
  }
  EXPECT_GE(processes.size(), 2u) << "chain spans distinct OKWS processes";

  // "Who got tainted with u" is as secret as u: the below-clearance reader
  // gets an empty chain (never a truncated one), cannot observe ANY edge
  // or refusal that mentions the taint, and its counts agree with its
  // visible sets — counting is not a side channel around reading.
  obs::ProvenanceReader low(Label::DefaultReceive());
  EXPECT_TRUE(low.WhyTainted(newest->subject, taint).empty());
  const Handle th = Handle::FromValue(taint);
  for (const obs::TaintEdge& e : ledger.edges()) {
    if (LevelLeq(Level::kL2, e.gate.Get(th))) {
      EXPECT_FALSE(low.CanObserveEdge(e)) << e.subject;
    }
  }
  for (const obs::RefusalRecord& r : ledger.refusals()) {
    if (LevelLeq(Level::kL2, r.gate.Get(th))) {
      EXPECT_FALSE(low.CanObserveRefusal(r)) << r.site;
    }
  }
  EXPECT_EQ(low.VisibleEdgeCount(), low.VisibleEdges().size());
  EXPECT_EQ(low.VisibleRefusalCount(), low.VisibleRefusals().size());
  EXPECT_LT(low.VisibleEdgeCount(), top.VisibleEdgeCount());

  obs::ProvenanceLedger::Get().Clear();
  obs::ProvenanceLedger::SetEnabled(false);
}

TEST_F(OkwsTraceTest, TracingDisabledLeavesNoResidue) {
  obs::TraceRing::SetEnabled(false);
  ASSERT_EQ(Fetch("/echo", "alice", "pw-a").status, 200);
  EXPECT_TRUE(obs::TraceRing::Get().events().empty());
}

TEST_F(OkwsTraceTest, MetricsSnapshotCarriesKernelAndOkwsFamilies) {
  ASSERT_EQ(Fetch("/notes?op=add&text=x", "alice", "pw-a").status, 200);
  const auto snap = obs::Registry::Get().Snapshot();
  // Kernel gauge group (registered for the lifetime of the world's kernel).
  EXPECT_GT(snap.at("kernel.stats.deliveries"), 0.0);
  EXPECT_GT(snap.at("kernel.mem.total_bytes"), 0.0);
  // Label-check cache and intern table see traffic from label operations.
  EXPECT_GT(snap.at("kernel.label_cache.hits") + snap.at("kernel.label_cache.misses"),
            0.0);
  EXPECT_GT(snap.at("labels.intern.probes"), 0.0);
  // netd persistent counters survive any world teardown.
  EXPECT_GE(snap.at("netd.connections_accepted"), 1.0);
  // The client records per-request latency on the virtual clock.
  EXPECT_GE(snap.at("okws.request_cycles.count"), 1.0);
}

// --- End-to-end: replication trace + hub health ------------------------------

class ReplTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::TraceRing::SetEnabled(true);
    obs::TraceRing::Get().Clear();

    StoreOptions popts;
    popts.dir = dir_.path() + "/primary";
    popts.shards = 2;
    auto store = DurableStore::Open(popts);
    ASSERT_TRUE(store.ok());
    primary_ = store.take();
    hub_ = std::make_unique<ReplicationHub>(primary_.get(), /*source_id=*/0x0B5);
    session_ = hub_->OpenSession();

    StoreOptions ropts;
    ropts.dir = dir_.path() + "/replica";
    ropts.shards = 2;
    auto replica = ReplicaStore::Open(ropts, ReplicaOptions{});
    ASSERT_TRUE(replica.ok());
    replica_ = replica.take();
  }

  void TearDown() override {
    obs::TraceRing::Get().Clear();
    obs::TraceRing::SetEnabled(false);
  }

  static std::vector<replwire::WireMessage> Parse(std::string stream) {
    std::vector<replwire::WireMessage> out;
    replwire::WireMessage m;
    while (replwire::ConsumeFrame(&stream, &m) == replwire::FrameParse::kFrame) {
      out.push_back(m);
      m = replwire::WireMessage();
    }
    return out;
  }

  // Frame/ack rounds until the session has nothing left to ship. When
  // expect_tid is nonzero, every frame must carry that trace id.
  void PumpFrames(uint64_t expect_tid, std::string* acks) {
    for (int round = 0; round < 100; ++round) {
      for (const replwire::WireMessage& a : Parse(std::move(*acks))) {
        session_->HandleAck(a);
      }
      acks->clear();
      std::string frames;
      if (session_->PollFrames(1 << 16, ~0ULL, &frames) == 0) {
        break;
      }
      for (const replwire::WireMessage& m : Parse(std::move(frames))) {
        if (expect_tid != 0) {
          EXPECT_EQ(m.trace_id, expect_tid) << "frame type " << int(m.type);
        }
        ASSERT_EQ(replica_->HandleFrame(m, acks), Status::kOk);
      }
    }
    for (const replwire::WireMessage& a : Parse(std::move(*acks))) {
      session_->HandleAck(a);
    }
    acks->clear();
  }

  TempDir dir_;
  std::unique_ptr<DurableStore> primary_;
  std::unique_ptr<ReplicationHub> hub_;
  FollowerSession* session_ = nullptr;
  std::unique_ptr<ReplicaStore> replica_;
};

TEST_F(ReplTraceTest, EveryFrameCarriesTheSessionTraceId) {
  const Label secrecy({{H(7), Level::kL3}}, Level::kStar);
  for (int i = 0; i < 20; ++i) {
    ASSERT_EQ(primary_->Put("k" + std::to_string(i), "v", secrecy, Label::Bottom()),
              Status::kOk);
  }

  std::string acks;
  const auto hello = Parse(session_->SessionHello());
  ASSERT_EQ(hello.size(), 1u);
  const uint64_t tid = hello[0].trace_id;
  EXPECT_NE(tid, 0u) << "hello mints the session's flow trace";
  ASSERT_EQ(replica_->HandleFrame(hello[0], &acks), Status::kOk);
  EXPECT_EQ(replica_->session_trace_id(), tid);

  // First catch-up arrives as snapshots (the fresh replica has no shared
  // history); a second round of writes then flows as WAL batches. Both
  // frame kinds must ride the session's trace.
  PumpFrames(tid, &acks);
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(primary_->Put("late" + std::to_string(i), "v", secrecy, Label::Bottom()),
              Status::kOk);
  }
  PumpFrames(tid, &acks);
  EXPECT_TRUE(session_->FullySynced());

  // Span chain: ship events on the hub side, apply events on the replica
  // side, one trace end to end.
  std::string names;
  bool saw_hello = false, saw_ship = false, saw_apply = false;
  for (const obs::SpanEvent& ev : obs::TraceRing::Get().events()) {
    EXPECT_EQ(ev.trace_id, tid);
    names += ev.name + " ";
    saw_hello |= ev.name == "repl.hello";
    saw_ship |= ev.name == "repl.ship";
    saw_apply |= ev.name == "repl.apply";
  }
  EXPECT_TRUE(saw_hello) << names;
  EXPECT_TRUE(saw_ship) << names;
  EXPECT_TRUE(saw_apply) << names;
}

TEST_F(ReplTraceTest, DebugStatusAndHealthGauges) {
  ASSERT_EQ(primary_->Put("k", "v", Label::Bottom(), Label::Bottom()), Status::kOk);

  std::string acks;
  for (const replwire::WireMessage& m : Parse(session_->SessionHello())) {
    ASSERT_EQ(replica_->HandleFrame(m, &acks), Status::kOk);
  }
  PumpFrames(0, &acks);
  // A post-catch-up write ships as a WAL batch (the initial sync was a
  // snapshot), exercising the batch counters and the WAL read path.
  ASSERT_EQ(primary_->Put("k2", "v2", Label::Bottom(), Label::Bottom()), Status::kOk);
  PumpFrames(0, &acks);

  const HubDebugStatus st = hub_->DebugStatus();
  EXPECT_EQ(st.source_id, 0x0B5u);
  ASSERT_EQ(st.sessions.size(), 1u);
  const auto& sess = st.sessions[0];
  EXPECT_NE(sess.trace_id, 0u);
  EXPECT_TRUE(sess.fully_synced);
  EXPECT_EQ(sess.apply_lag_cycles, 0u) << "fully synced => no lag";
  ASSERT_EQ(sess.shards.size(), 2u);
  for (const auto& cursor : sess.shards) {
    EXPECT_EQ(cursor.shipped_gen, cursor.acked_gen);
    EXPECT_EQ(cursor.shipped_off, cursor.acked_off);
  }

  // The same health surfaces as gauges while the hub lives, plus the
  // persistent repl.* counters that outlive it.
  const auto snap = obs::Registry::Get().Snapshot();
  bool saw_hub_gauge = false;
  for (const auto& [key, value] : snap) {
    if (key.rfind("repl.hub", 0) == 0 && key.find(".sessions") != std::string::npos) {
      saw_hub_gauge = value >= 1.0;
      if (saw_hub_gauge) break;
    }
  }
  EXPECT_TRUE(saw_hub_gauge) << "hub gauge group not registered";
  EXPECT_GE(snap.at("repl.batches_shipped"), 1.0);
  EXPECT_GE(snap.at("repl.bytes_shipped"), 1.0);
  EXPECT_EQ(snap.count("repl.apply_lag_cycles"), 1u);
  EXPECT_GE(snap.at("store.wal_read_calls"), 1.0);
}

}  // namespace
}  // namespace asbestos
