// Property tests for the label lattice (paper §5.1): labels under ⊑ form a
// lattice with ⊔ as least upper bound and ⊓ as greatest lower bound. Each
// property is checked over randomized labels drawn from a shared handle pool
// (so labels overlap), across several seeds via TEST_P.
#include <gtest/gtest.h>

#include <vector>

#include "src/base/rng.h"
#include "src/labels/label.h"

namespace asbestos {
namespace {

constexpr int kTrialsPerSeed = 60;

class LabelPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override { rng_ = std::make_unique<Rng>(GetParam()); }

  Level RandomLevel() { return static_cast<Level>(rng_->NextBelow(5)); }

  Handle RandomPoolHandle() {
    // Small pool: distinct labels frequently mention the same handles.
    return Handle::FromValue(rng_->NextInRange(1, 40));
  }

  Label RandomLabel() {
    Label l(RandomLevel());
    const uint64_t n = rng_->NextBelow(25);
    for (uint64_t i = 0; i < n; ++i) {
      l.Set(RandomPoolHandle(), RandomLevel());
    }
    l.CheckRep();
    return l;
  }

  std::unique_ptr<Rng> rng_;
};

TEST_P(LabelPropertyTest, LeqReflexive) {
  for (int t = 0; t < kTrialsPerSeed; ++t) {
    const Label a = RandomLabel();
    EXPECT_TRUE(a.Leq(a));
  }
}

TEST_P(LabelPropertyTest, LeqAntisymmetric) {
  for (int t = 0; t < kTrialsPerSeed; ++t) {
    const Label a = RandomLabel();
    const Label b = RandomLabel();
    if (a.Leq(b) && b.Leq(a)) {
      EXPECT_TRUE(a.Equals(b));
    }
  }
}

TEST_P(LabelPropertyTest, LeqTransitive) {
  for (int t = 0; t < kTrialsPerSeed; ++t) {
    const Label a = RandomLabel();
    const Label b = RandomLabel();
    const Label c = RandomLabel();
    if (a.Leq(b) && b.Leq(c)) {
      EXPECT_TRUE(a.Leq(c));
    }
  }
}

TEST_P(LabelPropertyTest, LeqAgreesWithPointwiseGet) {
  for (int t = 0; t < kTrialsPerSeed; ++t) {
    const Label a = RandomLabel();
    const Label b = RandomLabel();
    bool pointwise = LevelLeq(a.default_level(), b.default_level());
    for (uint64_t h = 1; h <= 40 && pointwise; ++h) {
      pointwise = LevelLeq(a.Get(Handle::FromValue(h)), b.Get(Handle::FromValue(h)));
    }
    EXPECT_EQ(a.Leq(b), pointwise);
  }
}

TEST_P(LabelPropertyTest, LubIsUpperBound) {
  for (int t = 0; t < kTrialsPerSeed; ++t) {
    const Label a = RandomLabel();
    const Label b = RandomLabel();
    const Label j = Label::Lub(a, b);
    EXPECT_TRUE(a.Leq(j));
    EXPECT_TRUE(b.Leq(j));
    j.CheckRep();
  }
}

TEST_P(LabelPropertyTest, LubIsLeastUpperBound) {
  for (int t = 0; t < kTrialsPerSeed; ++t) {
    const Label a = RandomLabel();
    const Label b = RandomLabel();
    const Label c = RandomLabel();
    if (a.Leq(c) && b.Leq(c)) {
      EXPECT_TRUE(Label::Lub(a, b).Leq(c));
    }
  }
}

TEST_P(LabelPropertyTest, GlbIsLowerBound) {
  for (int t = 0; t < kTrialsPerSeed; ++t) {
    const Label a = RandomLabel();
    const Label b = RandomLabel();
    const Label m = Label::Glb(a, b);
    EXPECT_TRUE(m.Leq(a));
    EXPECT_TRUE(m.Leq(b));
    m.CheckRep();
  }
}

TEST_P(LabelPropertyTest, GlbIsGreatestLowerBound) {
  for (int t = 0; t < kTrialsPerSeed; ++t) {
    const Label a = RandomLabel();
    const Label b = RandomLabel();
    const Label c = RandomLabel();
    if (c.Leq(a) && c.Leq(b)) {
      EXPECT_TRUE(c.Leq(Label::Glb(a, b)));
    }
  }
}

TEST_P(LabelPropertyTest, LubGlbPointwise) {
  for (int t = 0; t < kTrialsPerSeed; ++t) {
    const Label a = RandomLabel();
    const Label b = RandomLabel();
    const Label j = Label::Lub(a, b);
    const Label m = Label::Glb(a, b);
    for (uint64_t h = 0; h <= 41; ++h) {
      const Handle hh = Handle::FromValue(h == 0 ? 9999 : h);  // include a non-pool handle
      EXPECT_EQ(j.Get(hh), LevelMax(a.Get(hh), b.Get(hh)));
      EXPECT_EQ(m.Get(hh), LevelMin(a.Get(hh), b.Get(hh)));
    }
  }
}

TEST_P(LabelPropertyTest, LatticeAlgebraLaws) {
  for (int t = 0; t < kTrialsPerSeed; ++t) {
    const Label a = RandomLabel();
    const Label b = RandomLabel();
    const Label c = RandomLabel();
    // Commutativity.
    EXPECT_TRUE(Label::Lub(a, b).Equals(Label::Lub(b, a)));
    EXPECT_TRUE(Label::Glb(a, b).Equals(Label::Glb(b, a)));
    // Associativity.
    EXPECT_TRUE(Label::Lub(Label::Lub(a, b), c).Equals(Label::Lub(a, Label::Lub(b, c))));
    EXPECT_TRUE(Label::Glb(Label::Glb(a, b), c).Equals(Label::Glb(a, Label::Glb(b, c))));
    // Idempotence.
    EXPECT_TRUE(Label::Lub(a, a).Equals(a));
    EXPECT_TRUE(Label::Glb(a, a).Equals(a));
    // Absorption.
    EXPECT_TRUE(Label::Lub(a, Label::Glb(a, b)).Equals(a));
    EXPECT_TRUE(Label::Glb(a, Label::Lub(a, b)).Equals(a));
  }
}

TEST_P(LabelPropertyTest, LeqIffLubEqualsUpper) {
  for (int t = 0; t < kTrialsPerSeed; ++t) {
    const Label a = RandomLabel();
    const Label b = RandomLabel();
    EXPECT_EQ(a.Leq(b), Label::Lub(a, b).Equals(b));
    EXPECT_EQ(a.Leq(b), Label::Glb(a, b).Equals(a));
  }
}

TEST_P(LabelPropertyTest, StarsOnlyDefinition) {
  for (int t = 0; t < kTrialsPerSeed; ++t) {
    const Label a = RandomLabel();
    const Label s = a.StarsOnly();
    for (uint64_t h = 1; h <= 41; ++h) {
      const Handle hh = Handle::FromValue(h);
      const Level expected = a.Get(hh) == Level::kStar ? Level::kStar : Level::kL3;
      EXPECT_EQ(s.Get(hh), expected);
    }
    s.CheckRep();
  }
}

TEST_P(LabelPropertyTest, ContaminationPreservesStars) {
  // QS ← QS ⊔ (ES ⊓ QS⋆) never removes a ⋆ from QS (paper Eq. 5).
  for (int t = 0; t < kTrialsPerSeed; ++t) {
    Label qs = RandomLabel();
    const Label es = RandomLabel();
    const Label before = qs;
    Label contam = Label::Glb(es, qs.StarsOnly());
    qs.JoinInPlace(contam);
    for (uint64_t h = 1; h <= 41; ++h) {
      const Handle hh = Handle::FromValue(h);
      if (before.Get(hh) == Level::kStar) {
        EXPECT_EQ(qs.Get(hh), Level::kStar);
      } else {
        EXPECT_EQ(qs.Get(hh), LevelMax(before.Get(hh), es.Get(hh)));
      }
    }
  }
}

TEST_P(LabelPropertyTest, ParseToStringRoundTrip) {
  for (int t = 0; t < kTrialsPerSeed; ++t) {
    const Label a = RandomLabel();
    Label parsed;
    ASSERT_TRUE(Label::Parse(a.ToString(), &parsed)) << a.ToString();
    EXPECT_TRUE(parsed.Equals(a));
  }
}

TEST_P(LabelPropertyTest, InPlaceMatchesFunctional) {
  for (int t = 0; t < kTrialsPerSeed; ++t) {
    const Label a = RandomLabel();
    const Label b = RandomLabel();
    Label join_in_place = a;
    join_in_place.JoinInPlace(b);
    EXPECT_TRUE(join_in_place.Equals(Label::Lub(a, b)));
    Label meet_in_place = a;
    meet_in_place.MeetInPlace(b);
    EXPECT_TRUE(meet_in_place.Equals(Label::Glb(a, b)));
  }
}

TEST_P(LabelPropertyTest, LargeLabelStress) {
  // Wide labels with interleaved inserts and removals keep their invariants.
  Label l(Level::kL1);
  Rng& rng = *rng_;
  for (int i = 0; i < 3000; ++i) {
    const Handle h = Handle::FromValue(rng.NextInRange(1, 700));
    l.Set(h, static_cast<Level>(rng.NextBelow(5)));
  }
  l.CheckRep();
  const Label copy = l;
  for (int i = 0; i < 500; ++i) {
    l.Set(Handle::FromValue(rng.NextInRange(1, 700)), Level::kL1);  // removals
  }
  l.CheckRep();
  copy.CheckRep();  // the shared-then-unshared copy must be unaffected
}

INSTANTIATE_TEST_SUITE_P(Seeds, LabelPropertyTest,
                         ::testing::Values(1ULL, 7ULL, 42ULL, 1234ULL, 987654321ULL));

}  // namespace
}  // namespace asbestos
