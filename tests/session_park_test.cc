// Session parking (million-compartment scale): an idle worker session
// collapses to a compact record and its event process exits; the user's next
// request resumes transparently — same response, same labels/privileges,
// and, in steady state, bit-identical charged label work and cycles.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "src/kernel/memstats.h"
#include "src/labels/label.h"
#include "src/okws/demux.h"
#include "src/okws/idd.h"
#include "src/okws/okws_world.h"
#include "src/okws/services.h"
#include "src/okws/worker.h"
#include "src/sim/cycles.h"
#include "tests/test_util.h"

namespace asbestos {
namespace {

OkwsWorldConfig ParkConfig() {
  OkwsWorldConfig config;
  config.users = {{"alice", "pw-a"}, {"bob", "pw-b"}};
  WorkerOptions park;
  park.park_idle_sessions = true;
  config.services.push_back(
      {"echo", [] { return std::make_unique<EchoService>(); }, false, park});
  config.services.push_back(
      {"store", [] { return std::make_unique<StorageService>(); }, false, park});
  config.services.push_back(
      {"notes", [] { return std::make_unique<NotesService>(); }, false, park});
  config.extra_tables = {NotesService::kTableSql};
  return config;
}

WorkerProcess* FindWorker(OkwsWorld& world, const std::string& process_name) {
  Process* p = world.kernel().FindProcessByName(process_name);
  return p == nullptr ? nullptr : dynamic_cast<WorkerProcess*>(p->code.get());
}

IddProcess* FindIdd(OkwsWorld& world) {
  Process* p = world.kernel().FindProcessByName("idd");
  return p == nullptr ? nullptr : dynamic_cast<IddProcess*>(p->code.get());
}

HttpLoadClient::Result FetchFrom(OkwsWorld& world, const std::string& target,
                                 const std::string& user, const std::string& pass) {
  HttpLoadClient client(&world.net(), 80, 4);
  client.Enqueue(OkwsWorld::MakeRequest(target, user, pass), 0);
  world.RunClient(&client);
  EXPECT_EQ(client.results().size(), 1u) << target << " produced no response";
  return client.results().empty() ? HttpLoadClient::Result{} : client.results()[0];
}

// The park handshake (worker → demux → worker → EpExit) completes after the
// HTTP response is already on the wire; run the machine to idle so tests
// observe the settled state.
void Settle(OkwsWorld& world) {
  world.Pump();
  world.Pump();
}

TEST(SessionParkTest, IdleSessionParksAndItsEventProcessExits) {
  const SessionParkStats base = GetSessionParkStats();
  OkwsWorld world(ParkConfig());
  world.PumpUntilReady();

  EXPECT_EQ(FetchFrom(world, "/echo", "alice", "pw-a").status, 200);
  Settle(world);

  WorkerProcess* worker = FindWorker(world, "worker-echo");
  ASSERT_NE(worker, nullptr);
  EXPECT_EQ(worker->parked_session_count(), 1u);
  Process* proc = world.kernel().FindProcessByName("worker-echo");
  ASSERT_NE(proc, nullptr);
  EXPECT_EQ(proc->eps.size(), 0u) << "the parked session's EP must be gone";

  const SessionParkStats mid = GetSessionParkStats();
  EXPECT_EQ(mid.parks, base.parks + 1);
  EXPECT_EQ(mid.resumes, base.resumes);
  EXPECT_EQ(mid.live_records, base.live_records + 1);
  EXPECT_GT(mid.live_bytes, base.live_bytes);
  // The kernel report surfaces the same ledger as session_bytes.
  EXPECT_EQ(world.kernel().MemReport().session_bytes,
            static_cast<uint64_t>(mid.live_bytes));

  // The next request resumes the parked session, then parks again at idle.
  EXPECT_EQ(FetchFrom(world, "/echo", "alice", "pw-a").status, 200);
  Settle(world);
  const SessionParkStats resumed = GetSessionParkStats();
  EXPECT_EQ(resumed.resumes, base.resumes + 1);
  EXPECT_EQ(resumed.parks, base.parks + 2);
  EXPECT_EQ(worker->parked_session_count(), 1u);
}

TEST(SessionParkTest, ResumeRestoresSessionState) {
  OkwsWorld world(ParkConfig());
  world.PumpUntilReady();

  // StorageService echoes the PREVIOUS request's session payload: the value
  // stored before the park must come back after the resume.
  EXPECT_EQ(FetchFrom(world, "/store?d=before-park", "alice", "pw-a").status, 200);
  Settle(world);
  WorkerProcess* worker = FindWorker(world, "worker-store");
  ASSERT_NE(worker, nullptr);
  ASSERT_EQ(worker->parked_session_count(), 1u);

  const auto r = FetchFrom(world, "/store", "alice", "pw-a");
  EXPECT_EQ(r.status, 200);
  ASSERT_GE(r.body.size(), std::string("before-park").size());
  EXPECT_EQ(r.body.substr(0, 11), "before-park")
      << "session payload lost across park/resume";
}

TEST(SessionParkTest, SteadyStateResumeChargesIdenticalWork) {
  OkwsWorld world(ParkConfig());
  world.PumpUntilReady();
  IddProcess* idd = FindIdd(world);
  ASSERT_NE(idd, nullptr);

  // Warm up: first login mints uT/uG, first park establishes steady state.
  EXPECT_EQ(FetchFrom(world, "/echo", "alice", "pw-a").status, 200);
  Settle(world);
  EXPECT_EQ(FetchFrom(world, "/echo", "alice", "pw-a").status, 200);
  Settle(world);

  Handle taint_before;
  Handle grant_before;
  int64_t uid_before = 0;
  ASSERT_TRUE(idd->LookupCachedIdentity("alice", &taint_before, &grant_before, &uid_before));

  // Every subsequent park→resume generation must charge the same work: the
  // resumed session is the same compartment, not an approximation of it.
  // Label-op and fast-path counts are bit-compared. Entries-visited and raw
  // cycles get a tight spread bound instead: each generation's fresh uW has
  // a different (random) handle value, so sorted-label scans stop at a
  // different position — a few entries of value-position noise that
  // never-parked requests exhibit too. The bound is far below the creep a
  // leaked per-generation label entry causes (before demux/netd learned to
  // shed retired uW capabilities, cycles grew ~117 per generation — five
  // generations would blow this bound several times over).
  struct GenCost {
    LabelWorkStats labels;
    uint64_t cycles = 0;
  };
  GenCost generations[5];
  for (GenCost& gen : generations) {
    const LabelWorkStats w0 = GetLabelWorkStats();
    const uint64_t c0 = GetCycleAccounting().grand_total();
    const auto r = FetchFrom(world, "/echo", "alice", "pw-a");
    Settle(world);
    EXPECT_EQ(r.status, 200);
    const LabelWorkStats w1 = GetLabelWorkStats();
    gen.labels.ops = w1.ops - w0.ops;
    gen.labels.entries_visited = w1.entries_visited - w0.entries_visited;
    gen.labels.fast_path_hits = w1.fast_path_hits - w0.fast_path_hits;
    gen.cycles = GetCycleAccounting().grand_total() - c0;
  }
  uint64_t min_entries = ~0ULL, max_entries = 0, min_cycles = ~0ULL, max_cycles = 0;
  for (const GenCost& gen : generations) {
    EXPECT_EQ(gen.labels.ops, generations[0].labels.ops)
        << "label-op count must be bit-identical across generations";
    EXPECT_EQ(gen.labels.fast_path_hits, generations[0].labels.fast_path_hits)
        << "fast-path count must be bit-identical across generations";
    min_entries = std::min(min_entries, gen.labels.entries_visited);
    max_entries = std::max(max_entries, gen.labels.entries_visited);
    min_cycles = std::min(min_cycles, gen.cycles);
    max_cycles = std::max(max_cycles, gen.cycles);
  }
  EXPECT_LE(max_entries - min_entries, 16u)
      << "entries-visited spread " << min_entries << ".." << max_entries
      << " — a retired uW capability is leaking into a label";
  EXPECT_LE(max_cycles - min_cycles, 100u)
      << "cycle spread " << min_cycles << ".." << max_cycles
      << " — per-generation work is growing";

  // The resumed compartment is literally the same: uT/uG/uid unchanged.
  Handle taint_after;
  Handle grant_after;
  int64_t uid_after = 0;
  ASSERT_TRUE(idd->LookupCachedIdentity("alice", &taint_after, &grant_after, &uid_after));
  EXPECT_EQ(taint_after.value(), taint_before.value());
  EXPECT_EQ(grant_after.value(), grant_before.value());
  EXPECT_EQ(uid_after, uid_before);
}

TEST(SessionParkTest, ParkedUsersStayIsolated) {
  OkwsWorld world(ParkConfig());
  world.PumpUntilReady();

  EXPECT_EQ(FetchFrom(world, "/notes?op=add&text=alices-secret", "alice", "pw-a").status, 200);
  EXPECT_EQ(FetchFrom(world, "/notes?op=add&text=bobs-note", "bob", "pw-b").status, 200);
  Settle(world);
  WorkerProcess* worker = FindWorker(world, "worker-notes");
  ASSERT_NE(worker, nullptr);
  EXPECT_EQ(worker->parked_session_count(), 2u);

  // Both resumes see exactly their own labeled rows.
  EXPECT_EQ(FetchFrom(world, "/notes?op=list", "alice", "pw-a").body, "alices-secret\n");
  EXPECT_EQ(FetchFrom(world, "/notes?op=list", "bob", "pw-b").body, "bobs-note\n");
}

TEST(SessionParkTest, DurableSessionResumesAfterReboot) {
  asbestos::testing::TempDir dir;
  OkwsWorldConfig config = ParkConfig();
  config.idd_options.store_dir = dir.path() + "/idd";
  config.demux_options.store_dir = dir.path() + "/demux";
  config.dbproxy_options.store_dir = dir.path() + "/db";

  uint64_t taint1 = 0;
  uint64_t grant1 = 0;

  {  // --- boot 1: log in, write user-private state, park -------------------
    OkwsWorld world(config);
    world.PumpUntilReady();
    EXPECT_EQ(FetchFrom(world, "/notes?op=add&text=durable", "alice", "pw-a").status, 200);
    Settle(world);
    WorkerProcess* worker = FindWorker(world, "worker-notes");
    ASSERT_NE(worker, nullptr);
    EXPECT_EQ(worker->parked_session_count(), 1u);
    IddProcess* idd = FindIdd(world);
    ASSERT_NE(idd, nullptr);
    Handle t;
    Handle g;
    int64_t uid = 0;
    ASSERT_TRUE(idd->LookupCachedIdentity("alice", &t, &g, &uid));
    taint1 = t.value();
    grant1 = g.value();
  }

  {  // --- boot 2: recovered compartments, parking still live ----------------
    OkwsWorld world(config);
    world.PumpUntilReady();
    const SessionParkStats base = GetSessionParkStats();

    // The recovered session serves the durable, labeled row under the
    // recovered uT — identical privileges to the pre-reboot compartment.
    const auto r = FetchFrom(world, "/notes?op=list", "alice", "pw-a");
    EXPECT_EQ(r.status, 200);
    EXPECT_EQ(r.body, "durable\n");
    IddProcess* idd = FindIdd(world);
    ASSERT_NE(idd, nullptr);
    Handle t;
    Handle g;
    int64_t uid = 0;
    ASSERT_TRUE(idd->LookupCachedIdentity("alice", &t, &g, &uid));
    EXPECT_EQ(t.value(), taint1) << "uT must be boot-stable under parking";
    EXPECT_EQ(g.value(), grant1) << "uG must be boot-stable under parking";

    // Parking keeps cycling after recovery: park, resume, park again.
    Settle(world);
    WorkerProcess* worker = FindWorker(world, "worker-notes");
    ASSERT_NE(worker, nullptr);
    EXPECT_EQ(worker->parked_session_count(), 1u);
    EXPECT_EQ(FetchFrom(world, "/notes?op=list", "alice", "pw-a").body, "durable\n");
    Settle(world);
    const SessionParkStats end = GetSessionParkStats();
    EXPECT_GE(end.parks, base.parks + 2);
    EXPECT_GE(end.resumes, base.resumes + 1);
  }
}

TEST(SessionParkTest, ParkLedgerBalancesAtTeardown) {
  const SessionParkStats before = GetSessionParkStats();
  {
    OkwsWorld world(ParkConfig());
    world.PumpUntilReady();
    EXPECT_EQ(FetchFrom(world, "/echo", "alice", "pw-a").status, 200);
    EXPECT_EQ(FetchFrom(world, "/echo", "bob", "pw-b").status, 200);
    Settle(world);
    const SessionParkStats mid = GetSessionParkStats();
    EXPECT_EQ(mid.live_records, before.live_records + 2);
    EXPECT_GT(mid.live_bytes, before.live_bytes);
  }
  // Worker destructors return every record to the global ledger; the
  // cumulative park/resume counters never move backwards.
  const SessionParkStats after = GetSessionParkStats();
  EXPECT_EQ(after.live_records, before.live_records);
  EXPECT_EQ(after.live_bytes, before.live_bytes);
  EXPECT_GE(after.parks, before.parks + 2);
  EXPECT_GE(after.resumes, before.resumes);
}

}  // namespace
}  // namespace asbestos
