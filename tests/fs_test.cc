// The labeled file server: §5.2 privacy and §5.4 integrity, end to end
// through kernel label checks.
#include <gtest/gtest.h>

#include "src/fs/file_server.h"
#include "src/kernel/kernel.h"
#include "tests/test_util.h"

namespace asbestos {
namespace {

using testing::RecorderProcess;
using testing::ScriptedProcess;

class FsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto code = std::make_unique<FileServerProcess>();
    fs_code_ = code.get();
    SpawnArgs args;
    args.name = "fs";
    fs_pid_ = kernel_.CreateProcess(std::move(code), args);
    fs_port_ = fs_code_->service_port();
  }

  // A client process with one open reply port.
  std::pair<ProcessId, Handle> MakeClient(const std::string& name,
                                          const Label& send = Label::DefaultSend(),
                                          const Label& recv = Label::DefaultReceive()) {
    SpawnArgs args;
    args.name = name;
    args.send_label = send;
    args.recv_label = recv;
    const ProcessId pid =
        kernel_.CreateProcess(std::make_unique<RecorderProcess>(&received_), args);
    Handle port;
    kernel_.WithProcessContext(pid, [&](ProcessContext& ctx) {
      port = ctx.NewPort(Label::Top());
      EXPECT_EQ(ctx.SetPortLabel(port, Label::Top()), Status::kOk);
    });
    return {pid, port};
  }

  // Owner creates a private file "path" in a fresh compartment; returns the
  // (taint, grant) handles.
  std::pair<Handle, Handle> CreatePrivateFile(ProcessId owner, Handle owner_port,
                                              const std::string& path) {
    Handle taint;
    Handle grant;
    kernel_.WithProcessContext(owner, [&](ProcessContext& ctx) {
      taint = ctx.NewHandle();
      grant = ctx.NewHandle();
      Message m;
      m.type = fs_proto::kCreate;
      m.data = path;
      m.words = {1, taint.value(), LevelOrdinal(Level::kL3), grant.value(),
                 LevelOrdinal(Level::kL0)};
      m.reply_port = owner_port;
      SendArgs args;
      // Decentralized compartment setup: grant the server ⋆ for the secrecy
      // handle and raise its receive label so tainted writes reach it.
      args.decont_send = Label({{taint, Level::kStar}}, Level::kL3);
      args.decont_receive = Label({{taint, Level::kL3}}, Level::kStar);
      EXPECT_EQ(ctx.Send(fs_port_, std::move(m), args), Status::kOk);
    });
    kernel_.RunUntilIdle();
    EXPECT_FALSE(received_.empty());
    EXPECT_EQ(received_.back().msg.words[1], 0u) << "create should succeed";
    received_.clear();
    return {taint, grant};
  }

  uint64_t LastStatusWord() const { return received_.back().msg.words[1]; }

  Kernel kernel_{0xf00dULL};
  FileServerProcess* fs_code_ = nullptr;
  ProcessId fs_pid_ = kNoProcess;
  Handle fs_port_;
  std::vector<RecorderProcess::Received> received_;
};

TEST_F(FsTest, CreateWriteRead) {
  auto [alice, alice_port] = MakeClient("alice");
  auto [taint, grant] = CreatePrivateFile(alice, alice_port, "/home/alice/secret");

  // Alice holds the grant handle at ⋆, so V = {uG 0, 3} bounds her send
  // label and proves she speaks for the file's integrity compartment.
  kernel_.WithProcessContext(alice, [&](ProcessContext& ctx) {
    Message w;
    w.type = fs_proto::kWrite;
    w.data = "/home/alice/secret\nhello world";
    w.words = {2};
    w.reply_port = alice_port;
    SendArgs args;
    args.verify = Label({{grant, Level::kL0}}, Level::kL3);
    EXPECT_EQ(ctx.Send(fs_port_, std::move(w), args), Status::kOk);
  });
  kernel_.RunUntilIdle();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(LastStatusWord(), 0u);
  received_.clear();

  // Reading taints the reader: alice's receive label must accept the taint.
  // She holds ⋆ for the compartment, so raising her own receive level is
  // permitted — and the contamination will not stick to her ⋆.
  kernel_.WithProcessContext(alice, [&](ProcessContext& ctx) {
    ASSERT_EQ(ctx.SetReceiveLevel(taint, Level::kL3), Status::kOk);
    Message r;
    r.type = fs_proto::kRead;
    r.data = "/home/alice/secret";
    r.words = {3};
    r.reply_port = alice_port;
    EXPECT_EQ(ctx.Send(fs_port_, std::move(r), SendArgs()), Status::kOk);
  });
  kernel_.RunUntilIdle();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].msg.data, "hello world");
  EXPECT_EQ(kernel_.SendLabelOf(alice).Get(taint), Level::kStar)
      << "owner's ⋆ survives reading her own file";
}

TEST_F(FsTest, ReaderWithoutClearanceGetsNothing) {
  auto [alice, alice_port] = MakeClient("alice");
  auto [taint, grant] = CreatePrivateFile(alice, alice_port, "/f");
  (void)taint;
  (void)grant;

  // Bob's default receive label {2} cannot accept the uT 3 contamination on
  // the read reply: the kernel drops it and bob learns nothing.
  auto [bob, bob_port] = MakeClient("bob");
  kernel_.WithProcessContext(bob, [&](ProcessContext& ctx) {
    Message r;
    r.type = fs_proto::kRead;
    r.data = "/f";
    r.words = {1};
    r.reply_port = bob_port;
    EXPECT_EQ(ctx.Send(fs_port_, std::move(r)), Status::kOk);
  });
  kernel_.RunUntilIdle();
  EXPECT_TRUE(received_.empty());
  EXPECT_GE(kernel_.stats().drops_label_check, 1u);
}

TEST_F(FsTest, ClearedReaderGetsTainted) {
  auto [alice, alice_port] = MakeClient("alice");
  auto [taint, grant] = CreatePrivateFile(alice, alice_port, "/f");
  (void)grant;
  kernel_.WithProcessContext(alice, [&](ProcessContext& ctx) {
    Message w;
    w.type = fs_proto::kWrite;
    w.data = "/f\npayload";
    w.words = {2};
    SendArgs args;
    args.verify = Label({{grant, Level::kL0}}, Level::kL3);
    EXPECT_EQ(ctx.Send(fs_port_, std::move(w), args), Status::kOk);
  });
  kernel_.RunUntilIdle();
  received_.clear();

  // Carol is cleared for the compartment (receive label raised by alice).
  auto [carol, carol_port] = MakeClient("carol");
  kernel_.WithProcessContext(alice, [&](ProcessContext& ctx) {
    Message hello;
    hello.type = 999;
    SendArgs args;
    args.decont_receive = Label({{taint, Level::kL3}}, Level::kStar);
    EXPECT_EQ(ctx.Send(carol_port, std::move(hello), args), Status::kOk);
  });
  kernel_.RunUntilIdle();
  received_.clear();

  kernel_.WithProcessContext(carol, [&](ProcessContext& ctx) {
    Message r;
    r.type = fs_proto::kRead;
    r.data = "/f";
    r.words = {1};
    r.reply_port = carol_port;
    EXPECT_EQ(ctx.Send(fs_port_, std::move(r)), Status::kOk);
  });
  kernel_.RunUntilIdle();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].msg.data, "payload");
  EXPECT_EQ(kernel_.SendLabelOf(carol).Get(taint), Level::kL3)
      << "reading contaminated carol with the file's compartment";
}

TEST_F(FsTest, WriteWithoutGrantRejected) {
  auto [alice, alice_port] = MakeClient("alice");
  CreatePrivateFile(alice, alice_port, "/f");

  auto [mallory, mallory_port] = MakeClient("mallory");
  kernel_.WithProcessContext(mallory, [&](ProcessContext& ctx) {
    Message w;
    w.type = fs_proto::kWrite;
    w.data = "/f\ncorrupted";
    w.words = {1};
    w.reply_port = mallory_port;
    // No V at all: the server cannot see a speaks-for credential.
    EXPECT_EQ(ctx.Send(fs_port_, std::move(w)), Status::kOk);
  });
  kernel_.RunUntilIdle();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(LastStatusWord(), static_cast<uint64_t>(-static_cast<int>(Status::kAccessDenied)));
}

TEST_F(FsTest, ForgedVerifyLabelNeverArrives) {
  auto [alice, alice_port] = MakeClient("alice");
  auto [taint, grant] = CreatePrivateFile(alice, alice_port, "/f");
  (void)taint;

  // Mallory claims the grant in V without holding it: ES ⊑ V fails in the
  // kernel and the file server never even sees the message.
  auto [mallory, mallory_port] = MakeClient("mallory");
  kernel_.WithProcessContext(mallory, [&](ProcessContext& ctx) {
    Message w;
    w.type = fs_proto::kWrite;
    w.data = "/f\ncorrupted";
    w.words = {1};
    w.reply_port = mallory_port;
    SendArgs args;
    args.verify = Label({{grant, Level::kL0}}, Level::kL3);
    EXPECT_EQ(ctx.Send(fs_port_, std::move(w), args), Status::kOk);
  });
  kernel_.RunUntilIdle();
  EXPECT_TRUE(received_.empty());
  EXPECT_GE(kernel_.stats().drops_label_check, 1u);
}

TEST_F(FsTest, UnlinkRequiresIntegrity) {
  auto [alice, alice_port] = MakeClient("alice");
  auto [taint, grant] = CreatePrivateFile(alice, alice_port, "/f");
  (void)taint;

  auto [mallory, mallory_port] = MakeClient("mallory");
  kernel_.WithProcessContext(mallory, [&](ProcessContext& ctx) {
    Message u;
    u.type = fs_proto::kUnlink;
    u.data = "/f";
    u.words = {1};
    u.reply_port = mallory_port;
    EXPECT_EQ(ctx.Send(fs_port_, std::move(u)), Status::kOk);
  });
  kernel_.RunUntilIdle();
  EXPECT_EQ(fs_code_->file_count(), 1u);
  received_.clear();

  kernel_.WithProcessContext(alice, [&](ProcessContext& ctx) {
    Message u;
    u.type = fs_proto::kUnlink;
    u.data = "/f";
    u.words = {2};
    u.reply_port = alice_port;
    SendArgs args;
    args.verify = Label({{grant, Level::kL0}}, Level::kL3);
    EXPECT_EQ(ctx.Send(fs_port_, std::move(u), args), Status::kOk);
  });
  kernel_.RunUntilIdle();
  EXPECT_EQ(fs_code_->file_count(), 0u);
}

TEST_F(FsTest, CreateInUncontrolledCompartmentRejected) {
  // Creating a secret file requires granting the server ⋆ for the secrecy
  // compartment; without the grant the server refuses to serve the file.
  auto [mallory, mallory_port] = MakeClient("mallory");
  kernel_.WithProcessContext(mallory, [&](ProcessContext& ctx) {
    Message m;
    m.type = fs_proto::kCreate;
    m.data = "/evil";
    m.words = {1, 0x1234567, LevelOrdinal(Level::kL3), 0, 0};
    m.reply_port = mallory_port;
    EXPECT_EQ(ctx.Send(fs_port_, std::move(m)), Status::kOk);
  });
  kernel_.RunUntilIdle();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(LastStatusWord(), static_cast<uint64_t>(-static_cast<int>(Status::kAccessDenied)));
  EXPECT_EQ(fs_code_->file_count(), 0u);
}

// --- Durable file server (src/store): the §5.2 server survives a reboot ----
//
// Boot 1 creates a private file (secrecy + integrity compartments) and a
// public file against a store-backed server. Boot 2 re-creates the server
// from its log, with the boot loader re-applying the privileges the CREATE
// messages originally granted (RecoverySpawnArgs) and retiring the
// recovered handles from the generator. Contents, the read-time
// contamination label, and the write-time integrity bound must all come
// back identical.
TEST(FsPersistenceTest, RestartRecoversFilesAndLabels) {
  testing::TempDir dir;
  FileServerOptions fopts;
  fopts.data_dir = dir.path() + "/fs";

  uint64_t taint_value = 0;
  uint64_t grant_value = 0;

  {  // --- boot 1: create and populate --------------------------------------
    Kernel kernel(0xf00dULL);
    auto code = std::make_unique<FileServerProcess>(fopts);
    SpawnArgs fargs;
    fargs.name = "fs";
    kernel.CreateProcess(std::move(code), fargs);
    const Handle fs_port =
        dynamic_cast<FileServerProcess*>(kernel.FindProcessByName("fs")->code.get())
            ->service_port();

    std::vector<RecorderProcess::Received> received;
    SpawnArgs aargs;
    aargs.name = "alice";
    const ProcessId alice =
        kernel.CreateProcess(std::make_unique<RecorderProcess>(&received), aargs);
    kernel.WithProcessContext(alice, [&](ProcessContext& ctx) {
      const Handle reply = ctx.NewPort(Label::Top());
      EXPECT_EQ(ctx.SetPortLabel(reply, Label::Top()), Status::kOk);
      const Handle taint = ctx.NewHandle();
      const Handle grant = ctx.NewHandle();
      taint_value = taint.value();
      grant_value = grant.value();

      Message c;
      c.type = fs_proto::kCreate;
      c.data = "/home/alice/secret";
      c.words = {1, taint.value(), LevelOrdinal(Level::kL3), grant.value(),
                 LevelOrdinal(Level::kL0)};
      c.reply_port = reply;
      SendArgs cargs;
      cargs.decont_send = Label({{taint, Level::kStar}}, Level::kL3);
      cargs.decont_receive = Label({{taint, Level::kL3}}, Level::kStar);
      EXPECT_EQ(ctx.Send(fs_port, std::move(c), cargs), Status::kOk);

      Message w;
      w.type = fs_proto::kWrite;
      w.data = "/home/alice/secret\ntop secret";
      w.words = {2};
      w.reply_port = reply;
      SendArgs wargs;
      wargs.verify = Label({{grant, Level::kL0}}, Level::kL3);
      EXPECT_EQ(ctx.Send(fs_port, std::move(w), wargs), Status::kOk);

      Message pub;
      pub.type = fs_proto::kCreate;
      pub.data = "/motd";
      pub.words = {3, 0, 0, 0, 0};
      pub.reply_port = reply;
      EXPECT_EQ(ctx.Send(fs_port, std::move(pub), SendArgs()), Status::kOk);

      Message pw;
      pw.type = fs_proto::kWrite;
      pw.data = "/motd\nwelcome";
      pw.words = {4};
      pw.reply_port = reply;
      EXPECT_EQ(ctx.Send(fs_port, std::move(pw), SendArgs()), Status::kOk);
    });
    kernel.RunUntilIdle();
    ASSERT_EQ(received.size(), 4u);
    for (const auto& r : received) {
      EXPECT_EQ(r.msg.words[1], 0u);
    }
    // Group commit ran at end-of-pump: the batch's appends spread across
    // the store's shards and OnIdle handed every dirty shard to the
    // pipelined flusher (durability itself completes in the background; the
    // boot-2 recovery below is the actual durability check, since the store
    // destructor drains the pipeline).
    const FileServerProcess* fs =
        dynamic_cast<FileServerProcess*>(kernel.FindProcessByName("fs")->code.get());
    EXPECT_EQ(fs->store()->shard_count(), 4u);
    EXPECT_EQ(fs->store()->dirty_shard_count(), 0u)
        << "RunUntilIdle must leave no shard outside the commit pipeline";
  }

  {  // --- boot 2: recover and exercise --------------------------------------
    Kernel kernel(0xf00dULL);
    auto code = std::make_unique<FileServerProcess>(fopts);
    FileServerProcess* fs = code.get();
    ASSERT_EQ(fs->file_count(), 2u);
    fs->ReserveRecoveredHandles(kernel);
    const SpawnArgs fargs = fs->RecoverySpawnArgs("fs");

    const Handle taint = Handle::FromValue(taint_value);
    const Handle grant = Handle::FromValue(grant_value);
    EXPECT_EQ(fargs.send_label.Get(taint), Level::kStar)
        << "recovered server must hold ⋆ for the file's compartment";
    EXPECT_EQ(fargs.recv_label.Get(taint), Level::kL3)
        << "recovered server must accept the compartment's taint";

    // The store preserved the exact labels (acceptance criterion).
    const StoreRecord* rec = fs->store()->Get("/home/alice/secret");
    ASSERT_NE(rec, nullptr);
    EXPECT_TRUE(rec->secrecy.Equals(Label({{taint, Level::kL3}}, Level::kStar)));
    EXPECT_TRUE(rec->integrity.Equals(Label({{grant, Level::kL0}}, Level::kL3)));

    kernel.CreateProcess(std::move(code), fargs);
    const Handle fs_port = fs->service_port();
    EXPECT_GT(kernel.MemReport().store_bytes, 0u)
        << "durable state must show up in Figure-6 accounting";

    // A fresh compartment this boot must not collide with recovered ones.
    std::vector<RecorderProcess::Received> received;
    SpawnArgs bargs;
    bargs.name = "bob";
    bargs.recv_label = Label({{taint, Level::kL3}}, kDefaultReceiveLevel);  // cleared reader
    const ProcessId bob =
        kernel.CreateProcess(std::make_unique<RecorderProcess>(&received), bargs);
    kernel.WithProcessContext(bob, [&](ProcessContext& ctx) {
      const Handle fresh = ctx.NewHandle();
      EXPECT_NE(fresh.value(), taint_value);
      EXPECT_NE(fresh.value(), grant_value);

      const Handle reply = ctx.NewPort(Label::Top());
      EXPECT_EQ(ctx.SetPortLabel(reply, Label::Top()), Status::kOk);
      Message r;
      r.type = fs_proto::kRead;
      r.data = "/home/alice/secret";
      r.words = {1};
      r.reply_port = reply;
      EXPECT_EQ(ctx.Send(fs_port, std::move(r)), Status::kOk);
    });
    kernel.RunUntilIdle();
    ASSERT_EQ(received.size(), 1u);
    EXPECT_EQ(received[0].msg.data, "top secret");
    EXPECT_EQ(received[0].send_label_after.Get(taint), Level::kL3)
        << "the recovered contamination label must taint readers exactly as before";
    received.clear();

    // Integrity survives: an unprivileged writer is still rejected…
    SpawnArgs margs;
    margs.name = "mallory";
    const ProcessId mallory =
        kernel.CreateProcess(std::make_unique<RecorderProcess>(&received), margs);
    kernel.WithProcessContext(mallory, [&](ProcessContext& ctx) {
      const Handle reply = ctx.NewPort(Label::Top());
      EXPECT_EQ(ctx.SetPortLabel(reply, Label::Top()), Status::kOk);
      Message w;
      w.type = fs_proto::kWrite;
      w.data = "/home/alice/secret\ncorrupted";
      w.words = {1};
      w.reply_port = reply;
      EXPECT_EQ(ctx.Send(fs_port, std::move(w)), Status::kOk);
    });
    kernel.RunUntilIdle();
    ASSERT_EQ(received.size(), 1u);
    EXPECT_EQ(received[0].msg.words[1],
              static_cast<uint64_t>(-static_cast<int>(Status::kAccessDenied)));
    received.clear();

    // …while the boot loader can re-equip alice (it re-applies her labels
    // verbatim, the same trust that re-equipped the server) and she writes.
    SpawnArgs a2args;
    a2args.name = "alice2";
    a2args.send_label = Label({{taint, Level::kStar}, {grant, Level::kStar}}, kDefaultSendLevel);
    a2args.recv_label = Label({{taint, Level::kL3}}, kDefaultReceiveLevel);
    const ProcessId alice2 =
        kernel.CreateProcess(std::make_unique<RecorderProcess>(&received), a2args);
    kernel.WithProcessContext(alice2, [&](ProcessContext& ctx) {
      const Handle reply = ctx.NewPort(Label::Top());
      EXPECT_EQ(ctx.SetPortLabel(reply, Label::Top()), Status::kOk);
      Message w;
      w.type = fs_proto::kWrite;
      w.data = "/home/alice/secret\nsecond boot";
      w.words = {1};
      w.reply_port = reply;
      SendArgs wargs;
      wargs.verify = Label({{grant, Level::kL0}}, Level::kL3);
      EXPECT_EQ(ctx.Send(fs_port, std::move(w), wargs), Status::kOk);
    });
    kernel.RunUntilIdle();
    ASSERT_EQ(received.size(), 1u);
    EXPECT_EQ(received[0].msg.words[1], 0u);
  }

  {  // --- boot 3: the second boot's write survived too ----------------------
    Kernel kernel(0xf00dULL);
    auto code = std::make_unique<FileServerProcess>(fopts);
    ASSERT_EQ(code->file_count(), 2u);
    const StoreRecord* rec = code->store()->Get("/home/alice/secret");
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->value, "second boot");
    EXPECT_EQ(code->store()->Get("/motd")->value, "welcome");
  }
}

TEST_F(FsTest, PublicFileNeedsNothing) {
  auto [user, user_port] = MakeClient("user");
  kernel_.WithProcessContext(user, [&](ProcessContext& ctx) {
    Message m;
    m.type = fs_proto::kCreate;
    m.data = "/motd";
    m.words = {1, 0, 0, 0, 0};  // no secrecy, no integrity
    m.reply_port = user_port;
    EXPECT_EQ(ctx.Send(fs_port_, std::move(m)), Status::kOk);
  });
  kernel_.RunUntilIdle();
  EXPECT_EQ(LastStatusWord(), 0u);
  received_.clear();

  kernel_.WithProcessContext(user, [&](ProcessContext& ctx) {
    Message w;
    w.type = fs_proto::kWrite;
    w.data = "/motd\nwelcome";
    w.words = {2};
    w.reply_port = user_port;
    EXPECT_EQ(ctx.Send(fs_port_, std::move(w)), Status::kOk);
    Message r;
    r.type = fs_proto::kRead;
    r.data = "/motd";
    r.words = {3};
    r.reply_port = user_port;
    EXPECT_EQ(ctx.Send(fs_port_, std::move(r)), Status::kOk);
  });
  kernel_.RunUntilIdle();
  ASSERT_EQ(received_.size(), 2u);
  EXPECT_EQ(received_[1].msg.data, "welcome");
}

}  // namespace
}  // namespace asbestos
