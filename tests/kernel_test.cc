// Kernel IPC mechanics: ports, unreliable send, delivery-time checks, and
// the Figure-4 label operations.
#include "src/kernel/kernel.h"

#include <gtest/gtest.h>

#include <set>

#include "src/labels/label.h"
#include "tests/test_util.h"

namespace asbestos {
namespace {

using testing::RecorderProcess;
using testing::ScriptedProcess;

class KernelTest : public ::testing::Test {
 protected:
  Kernel kernel_{/*boot_key=*/0x5eedULL};
  std::vector<RecorderProcess::Received> received_;
};

TEST_F(KernelTest, BasicSendDeliver) {
  Handle port;
  SpawnArgs rargs;
  rargs.name = "recv";
  auto recorder = std::make_unique<RecorderProcess>(&received_);
  RecorderProcess* rec = recorder.get();
  const ProcessId rx = kernel_.CreateProcess(std::move(recorder), rargs);
  (void)rec;
  kernel_.WithProcessContext(rx, [&](ProcessContext& ctx) {
    port = ctx.NewPort(Label::Top());
    EXPECT_EQ(ctx.SetPortLabel(port, Label::Top()), Status::kOk);
  });

  SpawnArgs sargs;
  sargs.name = "send";
  const ProcessId tx = kernel_.CreateProcess(std::make_unique<ScriptedProcess>(), sargs);
  kernel_.WithProcessContext(tx, [&](ProcessContext& ctx) {
    Message m;
    m.type = 77;
    m.data = "hi";
    EXPECT_EQ(ctx.Send(port, std::move(m)), Status::kOk);
  });

  kernel_.RunUntilIdle();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].msg.type, 77u);
  EXPECT_EQ(received_[0].msg.data, "hi");
  EXPECT_EQ(received_[0].msg.port, port);
  EXPECT_EQ(kernel_.stats().deliveries, 1u);
}

TEST_F(KernelTest, NewPortIsClosedByDefault) {
  // new_port sets pR(p) ← 0: a sender with the default send level 1 cannot
  // reach the port until the owner grants access (paper §5.5).
  Handle port;
  SpawnArgs rargs;
  rargs.name = "recv";
  const ProcessId rx = kernel_.CreateProcess(std::make_unique<RecorderProcess>(&received_), rargs);
  kernel_.WithProcessContext(rx, [&](ProcessContext& ctx) { port = ctx.NewPort(Label::Top()); });

  SpawnArgs sargs;
  sargs.name = "send";
  const ProcessId tx = kernel_.CreateProcess(std::make_unique<ScriptedProcess>(), sargs);
  kernel_.WithProcessContext(tx, [&](ProcessContext& ctx) {
    EXPECT_EQ(ctx.Send(port, Message{}), Status::kOk) << "send never reports label failure";
  });

  kernel_.RunUntilIdle();
  EXPECT_TRUE(received_.empty());
  EXPECT_EQ(kernel_.stats().drops_label_check, 1u);
}

TEST_F(KernelTest, OwnerCanSendToItsOwnNewPort) {
  // The creator holds PS(p) = ⋆, which passes the pR(p) = 0 gate.
  std::vector<RecorderProcess::Received> got;
  SpawnArgs args;
  args.name = "self";
  Handle port;
  const ProcessId pid = kernel_.CreateProcess(std::make_unique<RecorderProcess>(&got), args);
  kernel_.WithProcessContext(pid, [&](ProcessContext& ctx) {
    port = ctx.NewPort(Label::Top());
    EXPECT_EQ(ctx.send_label().Get(port), Level::kStar);
    EXPECT_EQ(ctx.Send(port, Message{}), Status::kOk);
  });
  kernel_.RunUntilIdle();
  EXPECT_EQ(got.size(), 1u);
}

TEST_F(KernelTest, SetPortLabelOpensPort) {
  Handle port;
  SpawnArgs rargs;
  rargs.name = "recv";
  const ProcessId rx = kernel_.CreateProcess(std::make_unique<RecorderProcess>(&received_), rargs);
  kernel_.WithProcessContext(rx, [&](ProcessContext& ctx) {
    port = ctx.NewPort(Label::Top());
    // Resetting the label to {3} (no p→0 exception) opens the port to all.
    EXPECT_EQ(ctx.SetPortLabel(port, Label::Top()), Status::kOk);
  });

  SpawnArgs sargs;
  sargs.name = "send";
  const ProcessId tx = kernel_.CreateProcess(std::make_unique<ScriptedProcess>(), sargs);
  kernel_.WithProcessContext(tx, [&](ProcessContext& ctx) {
    EXPECT_EQ(ctx.Send(port, Message{}), Status::kOk);
  });
  kernel_.RunUntilIdle();
  EXPECT_EQ(received_.size(), 1u);
}

TEST_F(KernelTest, SendToUnknownHandleSilentlySucceeds) {
  SpawnArgs args;
  args.name = "p";
  const ProcessId pid = kernel_.CreateProcess(std::make_unique<ScriptedProcess>(), args);
  kernel_.WithProcessContext(pid, [&](ProcessContext& ctx) {
    EXPECT_EQ(ctx.Send(Handle::FromValue(0x123456), Message{}), Status::kOk);
  });
  EXPECT_EQ(kernel_.stats().drops_no_port, 1u);
}

TEST_F(KernelTest, ContaminationRaisesReceiverSendLabel) {
  Handle taint;
  Handle port;
  SpawnArgs rargs;
  rargs.name = "recv";
  const ProcessId rx = kernel_.CreateProcess(std::make_unique<RecorderProcess>(&received_), rargs);
  kernel_.WithProcessContext(rx, [&](ProcessContext& ctx) {
    port = ctx.NewPort(Label::Top());
    EXPECT_EQ(ctx.SetPortLabel(port, Label::Top()), Status::kOk);
  });
  // Receiver's default receive label is {2}: taint at level 2 is acceptable.
  SpawnArgs sargs;
  sargs.name = "send";
  const ProcessId tx = kernel_.CreateProcess(std::make_unique<ScriptedProcess>(), sargs);
  kernel_.WithProcessContext(tx, [&](ProcessContext& ctx) {
    taint = ctx.NewHandle();
    SendArgs args;
    args.contaminate = Label({{taint, Level::kL2}}, Level::kStar);
    EXPECT_EQ(ctx.Send(port, Message{}, args), Status::kOk);
  });
  kernel_.RunUntilIdle();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(kernel_.SendLabelOf(rx).Get(taint), Level::kL2);
}

TEST_F(KernelTest, TaintAtLevel3BlockedByDefaultReceiveLabel) {
  // Default QR is {2}: contamination at 3 exceeds it and the message drops.
  Handle port;
  SpawnArgs rargs;
  rargs.name = "recv";
  kernel_.CreateProcess(std::make_unique<RecorderProcess>(&received_), rargs);
  Process* rx = kernel_.FindProcessByName("recv");
  kernel_.WithProcessContext(rx->id, [&](ProcessContext& ctx) {
    port = ctx.NewPort(Label::Top());
    EXPECT_EQ(ctx.SetPortLabel(port, Label::Top()), Status::kOk);
  });
  SpawnArgs sargs;
  sargs.name = "send";
  const ProcessId tx = kernel_.CreateProcess(std::make_unique<ScriptedProcess>(), sargs);
  kernel_.WithProcessContext(tx, [&](ProcessContext& ctx) {
    const Handle taint = ctx.NewHandle();
    SendArgs args;
    args.contaminate = Label({{taint, Level::kL3}}, Level::kStar);
    EXPECT_EQ(ctx.Send(port, Message{}, args), Status::kOk);
  });
  kernel_.RunUntilIdle();
  EXPECT_TRUE(received_.empty());
  EXPECT_EQ(kernel_.stats().drops_label_check, 1u);
}

TEST_F(KernelTest, StarPreservedUnderContamination) {
  // A process with PS(h) = ⋆ cannot be contaminated with respect to h
  // (paper §5.3): receiving h-tainted data leaves its ⋆ intact.
  Handle taint;
  Handle port;
  std::vector<RecorderProcess::Received> got;
  SpawnArgs fs_args;
  fs_args.name = "fileserver";
  const ProcessId fs = kernel_.CreateProcess(std::make_unique<RecorderProcess>(&got), fs_args);
  kernel_.WithProcessContext(fs, [&](ProcessContext& ctx) {
    taint = ctx.NewHandle();  // fs controls the compartment
    port = ctx.NewPort(Label::Top());
    EXPECT_EQ(ctx.SetPortLabel(port, Label::Top()), Status::kOk);
    // Allow arbitrarily tainted senders.
    EXPECT_EQ(ctx.SetReceiveLevel(taint, Level::kL3), Status::kOk);
  });

  SpawnArgs sargs;
  sargs.name = "client";
  const ProcessId tx = kernel_.CreateProcess(std::make_unique<ScriptedProcess>(), sargs);
  kernel_.WithProcessContext(tx, [&](ProcessContext& ctx) {
    SendArgs args;
    args.contaminate = Label({{taint, Level::kL3}}, Level::kStar);
    EXPECT_EQ(ctx.Send(port, Message{}, args), Status::kOk);
  });
  kernel_.RunUntilIdle();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(kernel_.SendLabelOf(fs).Get(taint), Level::kStar)
      << "⋆ must take precedence over contamination";
}

TEST_F(KernelTest, DecontSendGrantsPrivilege) {
  // Creator of a handle can hand out ⋆ for it with D_S (capability grant).
  Handle h;
  Handle port;
  SpawnArgs rargs;
  rargs.name = "grantee";
  const ProcessId rx = kernel_.CreateProcess(std::make_unique<RecorderProcess>(&received_), rargs);
  kernel_.WithProcessContext(rx, [&](ProcessContext& ctx) {
    port = ctx.NewPort(Label::Top());
    EXPECT_EQ(ctx.SetPortLabel(port, Label::Top()), Status::kOk);
  });
  SpawnArgs gargs;
  gargs.name = "granter";
  const ProcessId tx = kernel_.CreateProcess(std::make_unique<ScriptedProcess>(), gargs);
  kernel_.WithProcessContext(tx, [&](ProcessContext& ctx) {
    h = ctx.NewHandle();
    SendArgs args;
    args.decont_send = Label({{h, Level::kStar}}, Level::kL3);
    EXPECT_EQ(ctx.Send(port, Message{}, args), Status::kOk);
  });
  kernel_.RunUntilIdle();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(kernel_.SendLabelOf(rx).Get(h), Level::kStar);
}

TEST_F(KernelTest, DecontSendWithoutStarIsDropped) {
  // Requirement (2): D_S(h) < 3 requires PS(h) = ⋆.
  Handle port;
  SpawnArgs rargs;
  rargs.name = "recv";
  const ProcessId rx = kernel_.CreateProcess(std::make_unique<RecorderProcess>(&received_), rargs);
  kernel_.WithProcessContext(rx, [&](ProcessContext& ctx) {
    port = ctx.NewPort(Label::Top());
    EXPECT_EQ(ctx.SetPortLabel(port, Label::Top()), Status::kOk);
  });
  SpawnArgs sargs;
  sargs.name = "imposter";
  const ProcessId tx = kernel_.CreateProcess(std::make_unique<ScriptedProcess>(), sargs);
  kernel_.WithProcessContext(tx, [&](ProcessContext& ctx) {
    SendArgs args;
    args.decont_send = Label({{Handle::FromValue(0x777), Level::kStar}}, Level::kL3);
    EXPECT_EQ(ctx.Send(port, Message{}, args), Status::kOk) << "silent drop, not an error";
  });
  kernel_.RunUntilIdle();
  EXPECT_TRUE(received_.empty());
  EXPECT_EQ(kernel_.stats().drops_privilege, 1u);
}

TEST_F(KernelTest, DecontReceiveRaisesReceiverAndRequiresStar) {
  Handle taint;
  Handle port;
  SpawnArgs rargs;
  rargs.name = "recv";
  const ProcessId rx = kernel_.CreateProcess(std::make_unique<RecorderProcess>(&received_), rargs);
  kernel_.WithProcessContext(rx, [&](ProcessContext& ctx) {
    port = ctx.NewPort(Label::Top());
    EXPECT_EQ(ctx.SetPortLabel(port, Label::Top()), Status::kOk);
  });
  SpawnArgs sargs;
  sargs.name = "owner";
  const ProcessId tx = kernel_.CreateProcess(std::make_unique<ScriptedProcess>(), sargs);
  kernel_.WithProcessContext(tx, [&](ProcessContext& ctx) {
    taint = ctx.NewHandle();
    SendArgs args;
    args.decont_receive = Label({{taint, Level::kL3}}, Level::kStar);
    EXPECT_EQ(ctx.Send(port, Message{}, args), Status::kOk);
  });
  kernel_.RunUntilIdle();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(kernel_.RecvLabelOf(rx).Get(taint), Level::kL3);

  // A process without ⋆ for the handle cannot use the same D_R.
  SpawnArgs iargs;
  iargs.name = "imposter";
  const ProcessId imp = kernel_.CreateProcess(std::make_unique<ScriptedProcess>(), iargs);
  kernel_.WithProcessContext(imp, [&](ProcessContext& ctx) {
    SendArgs args;
    args.decont_receive = Label({{taint, Level::kL3}}, Level::kStar);
    EXPECT_EQ(ctx.Send(port, Message{}, args), Status::kOk);
  });
  kernel_.RunUntilIdle();
  EXPECT_EQ(kernel_.stats().drops_privilege, 1u);
}

TEST_F(KernelTest, DecontReceiveBoundedByPortLabel) {
  // Requirement (4): D_R ⊑ pR. A low port label lets a process refuse
  // decontamination entirely (the mail-reader idiom of §5.5).
  Handle taint;
  Handle port;
  SpawnArgs rargs;
  rargs.name = "recv";
  const ProcessId rx = kernel_.CreateProcess(std::make_unique<RecorderProcess>(&received_), rargs);
  kernel_.WithProcessContext(rx, [&](ProcessContext& ctx) {
    port = ctx.NewPort(Label::Top());
    EXPECT_EQ(ctx.SetPortLabel(port, Label(Level::kL2)), Status::kOk);  // pR = {2}
  });
  SpawnArgs sargs;
  sargs.name = "owner";
  const ProcessId tx = kernel_.CreateProcess(std::make_unique<ScriptedProcess>(), sargs);
  kernel_.WithProcessContext(tx, [&](ProcessContext& ctx) {
    taint = ctx.NewHandle();
    SendArgs args;
    args.decont_receive = Label({{taint, Level::kL3}}, Level::kStar);  // 3 > pR's 2
    EXPECT_EQ(ctx.Send(port, Message{}, args), Status::kOk);
  });
  kernel_.RunUntilIdle();
  EXPECT_TRUE(received_.empty());
  EXPECT_EQ(kernel_.stats().drops_dr_port, 1u);
  EXPECT_EQ(kernel_.RecvLabelOf(rx).Get(taint), Level::kL2) << "no decontamination happened";
}

TEST_F(KernelTest, VerificationLabelDeliveredToReceiver) {
  Handle g;
  Handle port;
  SpawnArgs rargs;
  rargs.name = "recv";
  const ProcessId rx = kernel_.CreateProcess(std::make_unique<RecorderProcess>(&received_), rargs);
  kernel_.WithProcessContext(rx, [&](ProcessContext& ctx) {
    port = ctx.NewPort(Label::Top());
    EXPECT_EQ(ctx.SetPortLabel(port, Label::Top()), Status::kOk);
  });
  SpawnArgs sargs;
  sargs.name = "speaker";
  const ProcessId tx = kernel_.CreateProcess(std::make_unique<ScriptedProcess>(), sargs);
  kernel_.WithProcessContext(tx, [&](ProcessContext& ctx) {
    g = ctx.NewHandle();
    // Hold the grant handle at 0 ("speaks for") and prove it via V.
    EXPECT_EQ(ctx.SetSendLevel(g, Level::kL0), Status::kOk);
    SendArgs args;
    args.verify = Label({{g, Level::kL0}}, Level::kL3);
    EXPECT_EQ(ctx.Send(port, Message{}, args), Status::kOk);
  });
  kernel_.RunUntilIdle();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].msg.verify.Get(g), Level::kL0)
      << "receiver can check the credential in V";
}

TEST_F(KernelTest, VerificationLabelMustBoundSenderLabel) {
  // V is an upper bound on ES; claiming a credential you lack drops the
  // message (the confused-deputy defence of §5.4).
  Handle port;
  SpawnArgs rargs;
  rargs.name = "recv";
  const ProcessId rx = kernel_.CreateProcess(std::make_unique<RecorderProcess>(&received_), rargs);
  kernel_.WithProcessContext(rx, [&](ProcessContext& ctx) {
    port = ctx.NewPort(Label::Top());
    EXPECT_EQ(ctx.SetPortLabel(port, Label::Top()), Status::kOk);
  });
  SpawnArgs sargs;
  sargs.name = "liar";
  const ProcessId tx = kernel_.CreateProcess(std::make_unique<ScriptedProcess>(), sargs);
  kernel_.WithProcessContext(tx, [&](ProcessContext& ctx) {
    SendArgs args;
    // Claims g at 0 without holding it: PS(g) = 1 > V(g) = 0.
    args.verify = Label({{Handle::FromValue(0x888), Level::kL0}}, Level::kL3);
    EXPECT_EQ(ctx.Send(port, Message{}, args), Status::kOk);
  });
  kernel_.RunUntilIdle();
  EXPECT_TRUE(received_.empty());
  EXPECT_EQ(kernel_.stats().drops_label_check, 1u);
}

TEST_F(KernelTest, ChecksHappenAtDeliveryTime) {
  // A message that was deliverable when sent is dropped if the receiver's
  // labels changed before it tried to receive (paper §4).
  Handle port;
  SpawnArgs rargs;
  rargs.name = "recv";
  const ProcessId rx = kernel_.CreateProcess(std::make_unique<RecorderProcess>(&received_), rargs);
  kernel_.WithProcessContext(rx, [&](ProcessContext& ctx) {
    port = ctx.NewPort(Label::Top());
    EXPECT_EQ(ctx.SetPortLabel(port, Label::Top()), Status::kOk);
  });
  SpawnArgs sargs;
  sargs.name = "send";
  const ProcessId tx = kernel_.CreateProcess(std::make_unique<ScriptedProcess>(), sargs);
  kernel_.WithProcessContext(tx, [&](ProcessContext& ctx) {
    EXPECT_EQ(ctx.Send(port, Message{}), Status::kOk);  // deliverable right now
  });
  // Before the kernel runs, the receiver closes itself off: QR(default) is
  // out of reach, so lower the port label below the sender's level.
  kernel_.WithProcessContext(rx, [&](ProcessContext& ctx) {
    EXPECT_EQ(ctx.SetPortLabel(port, Label(Level::kL0)), Status::kOk);
  });
  kernel_.RunUntilIdle();
  EXPECT_TRUE(received_.empty());
  EXPECT_EQ(kernel_.stats().drops_label_check, 1u);
}

TEST_F(KernelTest, EffectiveSendLabelSnapshottedAtSendTime) {
  // Taint acquired after sending must not ride along with an earlier message.
  Handle port;
  Handle taint;
  SpawnArgs rargs;
  rargs.name = "recv";
  const ProcessId rx = kernel_.CreateProcess(std::make_unique<RecorderProcess>(&received_), rargs);
  kernel_.WithProcessContext(rx, [&](ProcessContext& ctx) {
    port = ctx.NewPort(Label::Top());
    EXPECT_EQ(ctx.SetPortLabel(port, Label::Top()), Status::kOk);
  });
  SpawnArgs sargs;
  sargs.name = "send";
  const ProcessId tx = kernel_.CreateProcess(std::make_unique<ScriptedProcess>(), sargs);
  kernel_.WithProcessContext(tx, [&](ProcessContext& ctx) {
    taint = ctx.NewHandle();
    EXPECT_EQ(ctx.Send(port, Message{}), Status::kOk);
    // Sender self-contaminates *after* the send.
    EXPECT_EQ(ctx.SetSendLevel(taint, Level::kL3), Status::kOk);
  });
  kernel_.RunUntilIdle();
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(kernel_.SendLabelOf(rx).Get(taint), kDefaultSendLevel)
      << "receiver must not inherit post-send taint";
}

TEST_F(KernelTest, TransferPortMovesReceiveRights) {
  Handle port;
  SpawnArgs aargs;
  aargs.name = "alice";
  const ProcessId alice = kernel_.CreateProcess(std::make_unique<ScriptedProcess>(), aargs);
  SpawnArgs bargs;
  bargs.name = "bob";
  const ProcessId bob = kernel_.CreateProcess(std::make_unique<RecorderProcess>(&received_), bargs);

  kernel_.WithProcessContext(alice, [&](ProcessContext& ctx) {
    port = ctx.NewPort(Label::Top());
    EXPECT_EQ(ctx.SetPortLabel(port, Label::Top()), Status::kOk);
    EXPECT_EQ(ctx.TransferPort(port, bob), Status::kOk);
    EXPECT_EQ(ctx.Send(port, Message{}), Status::kOk);
  });
  kernel_.RunUntilIdle();
  ASSERT_EQ(received_.size(), 1u) << "bob now receives on the transferred port";

  // Alice no longer owns it.
  kernel_.WithProcessContext(alice, [&](ProcessContext& ctx) {
    EXPECT_EQ(ctx.SetPortLabel(port, Label::Top()), Status::kNotFound);
  });
}

TEST_F(KernelTest, ClosePortDropsQueuedAndFutureMessages) {
  Handle port;
  SpawnArgs rargs;
  rargs.name = "recv";
  const ProcessId rx = kernel_.CreateProcess(std::make_unique<RecorderProcess>(&received_), rargs);
  kernel_.WithProcessContext(rx, [&](ProcessContext& ctx) {
    port = ctx.NewPort(Label::Top());
    EXPECT_EQ(ctx.SetPortLabel(port, Label::Top()), Status::kOk);
  });
  SpawnArgs sargs;
  sargs.name = "send";
  const ProcessId tx = kernel_.CreateProcess(std::make_unique<ScriptedProcess>(), sargs);
  kernel_.WithProcessContext(tx, [&](ProcessContext& ctx) {
    EXPECT_EQ(ctx.Send(port, Message{}), Status::kOk);
  });
  kernel_.WithProcessContext(rx, [&](ProcessContext& ctx) {
    EXPECT_EQ(ctx.ClosePort(port), Status::kOk);
  });
  kernel_.RunUntilIdle();
  EXPECT_TRUE(received_.empty());
  EXPECT_FALSE(kernel_.PortAlive(port));
  // Future sends are silently dropped too.
  kernel_.WithProcessContext(tx, [&](ProcessContext& ctx) {
    EXPECT_EQ(ctx.Send(port, Message{}), Status::kOk);
  });
  EXPECT_GE(kernel_.stats().drops_no_port, 2u);
}

TEST_F(KernelTest, ExitDissociatesEverything) {
  Handle port;
  SpawnArgs rargs;
  rargs.name = "doomed";
  const ProcessId rx = kernel_.CreateProcess(std::make_unique<RecorderProcess>(&received_), rargs);
  kernel_.WithProcessContext(rx, [&](ProcessContext& ctx) {
    port = ctx.NewPort(Label::Top());
    EXPECT_EQ(ctx.SetPortLabel(port, Label::Top()), Status::kOk);
  });
  kernel_.WithProcessContext(rx, [&](ProcessContext& ctx) { ctx.Exit(); });
  EXPECT_EQ(kernel_.FindProcess(rx), nullptr);
  EXPECT_FALSE(kernel_.PortAlive(port));
}

TEST_F(KernelTest, HandleValuesAreUniqueAndUnordered) {
  SpawnArgs args;
  args.name = "p";
  const ProcessId pid = kernel_.CreateProcess(std::make_unique<ScriptedProcess>(), args);
  std::vector<uint64_t> values;
  kernel_.WithProcessContext(pid, [&](ProcessContext& ctx) {
    for (int i = 0; i < 200; ++i) {
      values.push_back(ctx.NewHandle().value());
    }
  });
  std::set<uint64_t> unique(values.begin(), values.end());
  EXPECT_EQ(unique.size(), values.size());
  int ascending = 0;
  for (size_t i = 1; i < values.size(); ++i) {
    if (values[i] > values[i - 1]) {
      ++ascending;
    }
  }
  EXPECT_GT(ascending, 40);
  EXPECT_LT(ascending, 160) << "handles must not expose the allocation counter";
}

TEST_F(KernelTest, SelfLabelOperations) {
  SpawnArgs args;
  args.name = "p";
  const ProcessId pid = kernel_.CreateProcess(std::make_unique<ScriptedProcess>(), args);
  kernel_.WithProcessContext(pid, [&](ProcessContext& ctx) {
    const Handle mine = ctx.NewHandle();
    const Handle other = Handle::FromValue(0x4242);

    // Raising own send level (self-taint) is free.
    EXPECT_EQ(ctx.SetSendLevel(other, Level::kL3), Status::kOk);
    // Lowering it back without ⋆ is declassification: denied.
    EXPECT_EQ(ctx.SetSendLevel(other, Level::kL1), Status::kAccessDenied);
    // Dropping one's own ⋆ is always permitted.
    EXPECT_EQ(ctx.SetSendLevel(mine, Level::kL1), Status::kOk);
    // ...and is irreversible.
    EXPECT_EQ(ctx.SetSendLevel(mine, Level::kStar), Status::kAccessDenied);

    // Lowering the receive label (more restrictive) is free.
    EXPECT_EQ(ctx.SetReceiveLevel(other, Level::kL1), Status::kOk);
    // Raising it requires ⋆.
    EXPECT_EQ(ctx.SetReceiveLevel(other, Level::kL3), Status::kAccessDenied);
  });
}

// The batched pump's contract (SetPumpBatchLimit): the batch size changes
// delivery LOCALITY only. Replaying the same OKWS-shaped trace — a server
// with a deep queue and an OnIdle hook, an echo peer bouncing replies, a
// label-dropped message mid-queue — at B=1 (unbatched) and B=16 must give
// the same delivery order, the same OnIdle cadence, and the same virtual
// clock, cycle for cycle.
namespace {

struct TraceResult {
  std::vector<std::string> order;   // delivery sequence, tagged per process
  uint64_t on_idle_calls = 0;
  uint64_t cycles = 0;              // virtual cycles consumed by the trace
  uint64_t drops = 0;
};

class IdleCountingEcho : public ScriptedProcess {
 public:
  IdleCountingEcho(uint64_t* on_idle_calls, Starter starter, Handler handler)
      : ScriptedProcess(std::move(starter), std::move(handler)),
        on_idle_calls_(on_idle_calls) {}
  void OnIdle(ProcessContext&) override { ++*on_idle_calls_; }
  bool HasOnIdle() const override { return true; }

 private:
  uint64_t* on_idle_calls_;
};

TraceResult RunPumpTrace(uint32_t batch_limit) {
  TraceResult result;
  Kernel kernel(0x7ace);
  kernel.SetPumpBatchLimit(batch_limit);

  // "Worker": deep-queue server with an OnIdle hook; echoes type-1 requests
  // to the peer's reply port.
  Handle work_port, peer_port;
  SpawnArgs wargs;
  wargs.name = "worker";
  const ProcessId worker = kernel.CreateProcess(
      std::make_unique<IdleCountingEcho>(
          &result.on_idle_calls, nullptr,
          [&](ProcessContext& ctx, const Message& msg) {
            result.order.push_back("worker:" + std::to_string(msg.words[0]));
            if (msg.type == 1) {
              Message reply;
              reply.type = 2;
              reply.words = {msg.words[0]};
              reply.data = msg.data;  // forward the body: a refcount move
              ASB_ASSERT(ctx.Send(peer_port, std::move(reply)) == Status::kOk);
            }
          }),
      wargs);
  kernel.WithProcessContext(worker, [&](ProcessContext& ctx) {
    work_port = ctx.NewPort(Label::Top());
    ASB_ASSERT(ctx.SetPortLabel(work_port, Label::Top()) == Status::kOk);
  });

  // "Peer": collects echoes.
  SpawnArgs pargs;
  pargs.name = "peer";
  const ProcessId peer = kernel.CreateProcess(
      std::make_unique<ScriptedProcess>(nullptr,
                                        [&](ProcessContext&, const Message& msg) {
                                          result.order.push_back(
                                              "peer:" + std::to_string(msg.words[0]));
                                        }),
      pargs);
  kernel.WithProcessContext(peer, [&](ProcessContext& ctx) {
    peer_port = ctx.NewPort(Label::Top());
    ASB_ASSERT(ctx.SetPortLabel(peer_port, Label::Top()) == Status::kOk);
  });

  // The trace: two pump rounds of a deep queue (batching kicks in), with a
  // doomed contaminated message lodged mid-queue in round one (drops must
  // not disturb order, cycles, or idle cadence).
  const uint64_t start_cycles = GetCycleAccounting().now();
  SpawnArgs sargs;
  sargs.name = "client";
  const ProcessId client = kernel.CreateProcess(std::make_unique<ScriptedProcess>(), sargs);
  kernel.WithProcessContext(client, [&](ProcessContext& ctx) {
    const Handle taint = ctx.NewHandle();
    for (uint64_t i = 0; i < 8; ++i) {
      Message m;
      m.type = 1;
      m.words = {i};
      m.data = Payload(std::string(256, 'q'));
      if (i == 3) {
        // Receiver never learns about the taint handle: delivery-time check
        // fails and the message silently drops.
        SendArgs args;
        args.contaminate = Label({{taint, Level::kL3}}, Level::kStar);
        ASB_ASSERT(ctx.Send(work_port, std::move(m), args) == Status::kOk);
      } else {
        ASB_ASSERT(ctx.Send(work_port, std::move(m)) == Status::kOk);
      }
    }
  });
  kernel.RunUntilIdle();
  kernel.WithProcessContext(client, [&](ProcessContext& ctx) {
    for (uint64_t i = 8; i < 12; ++i) {
      Message m;
      m.type = 1;
      m.words = {i};
      ASB_ASSERT(ctx.Send(work_port, std::move(m)) == Status::kOk);
    }
  });
  kernel.RunUntilIdle();

  result.cycles = GetCycleAccounting().now() - start_cycles;
  result.drops = kernel.stats().drops_label_check;
  return result;
}

}  // namespace

TEST(BatchedPumpTest, BatchLimitNeverChangesOrderCyclesOrIdleCadence) {
  const TraceResult unbatched = RunPumpTrace(1);
  const TraceResult batched = RunPumpTrace(16);

  EXPECT_EQ(unbatched.drops, 1u);
  EXPECT_EQ(batched.drops, 1u);
  EXPECT_EQ(batched.order, unbatched.order) << "delivery order is batch-invariant";
  EXPECT_EQ(batched.on_idle_calls, unbatched.on_idle_calls)
      << "OnIdle fires once per quiesced pump regardless of batch size";
  EXPECT_EQ(batched.cycles, unbatched.cycles)
      << "charged virtual cycles are bit-identical across batch limits";
  // Sanity: the trace actually delivered both rounds (11 worker deliveries,
  // 11 echoes; the contaminated message dropped).
  EXPECT_EQ(unbatched.order.size(), 22u);
  EXPECT_GE(unbatched.on_idle_calls, 2u);
}

TEST_F(KernelTest, SelfContaminatePreservesStars) {
  SpawnArgs args;
  args.name = "p";
  const ProcessId pid = kernel_.CreateProcess(std::make_unique<ScriptedProcess>(), args);
  kernel_.WithProcessContext(pid, [&](ProcessContext& ctx) {
    const Handle mine = ctx.NewHandle();
    const Handle other = Handle::FromValue(0x4242);
    Label add({{mine, Level::kL3}, {other, Level::kL3}}, Level::kStar);
    ctx.SelfContaminate(add);
    EXPECT_EQ(ctx.send_label().Get(mine), Level::kStar);
    EXPECT_EQ(ctx.send_label().Get(other), Level::kL3);
  });
}

}  // namespace
}  // namespace asbestos
