// The binary label codec: lossless pickling, canonical compactness, and
// strict rejection of truncated or corrupt input.
#include "src/store/label_codec.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/labels/label.h"

namespace asbestos {
namespace {

Handle H(uint64_t v) { return Handle::FromValue(v); }

const Level kAllLevels[] = {Level::kStar, Level::kL0, Level::kL1, Level::kL2, Level::kL3};

TEST(VarintTest, RoundTripBoundaries) {
  const uint64_t values[] = {0,       1,          127,        128,
                             16383,   16384,      (1ULL << 32), Handle::kMaxValue,
                             ~0ULL};
  for (uint64_t v : values) {
    std::string buf;
    codec::AppendVarint(v, &buf);
    size_t pos = 0;
    uint64_t out = 0;
    ASSERT_EQ(codec::ReadVarint(buf, &pos, &out), Status::kOk) << v;
    EXPECT_EQ(out, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(VarintTest, TruncatedAndOversized) {
  std::string buf;
  codec::AppendVarint(~0ULL, &buf);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    size_t pos = 0;
    uint64_t out = 0;
    EXPECT_EQ(codec::ReadVarint(buf.substr(0, cut), &pos, &out), Status::kBufferTooSmall);
  }
  // Eleven continuation bytes can never be a valid 64-bit varint.
  const std::string over(11, '\x80');
  size_t pos = 0;
  uint64_t out = 0;
  EXPECT_NE(codec::ReadVarint(over, &pos, &out), Status::kOk);
  // A 10th byte carrying more than the final bit overflows 64 bits.
  std::string overflow(9, '\x80');
  overflow.push_back('\x02');
  pos = 0;
  EXPECT_EQ(codec::ReadVarint(overflow, &pos, &out), Status::kInvalidArgs);
}

TEST(LabelCodecTest, DefaultOnlyLabels) {
  for (Level def : kAllLevels) {
    const Label l(def);
    const std::string pickled = codec::PickleLabel(l);
    EXPECT_EQ(pickled.size(), 2u) << "default-only labels are 2 bytes";
    Label out;
    ASSERT_EQ(codec::UnpickleLabel(pickled, &out), Status::kOk);
    EXPECT_TRUE(out.Equals(l));
    out.CheckRep();
  }
}

TEST(LabelCodecTest, StarDefaultWithEntries) {
  const Label l({{H(5), Level::kL3}, {H(9), Level::kL0}}, Level::kStar);
  Label out;
  ASSERT_EQ(codec::UnpickleLabel(codec::PickleLabel(l), &out), Status::kOk);
  EXPECT_TRUE(out.Equals(l));
  EXPECT_EQ(out.default_level(), Level::kStar);
  EXPECT_EQ(out.Get(H(5)), Level::kL3);
  EXPECT_EQ(out.Get(H(9)), Level::kL0);
}

TEST(LabelCodecTest, MaximumHandle) {
  const Label l({{H(Handle::kMaxValue), Level::kL0}, {H(1), Level::kL3}}, Level::kL1);
  Label out;
  ASSERT_EQ(codec::UnpickleLabel(codec::PickleLabel(l), &out), Status::kOk);
  EXPECT_TRUE(out.Equals(l));
  EXPECT_EQ(out.Get(H(Handle::kMaxValue)), Level::kL0);
  out.CheckRep();
}

TEST(LabelCodecTest, StarRichLabelIsCompact) {
  // idd/netd-shaped label: thousands of ⋆ entries, a few non-⋆. Run-length
  // level encoding pays the level byte per run, so the whole thing stays
  // near 1–2 bytes per entry.
  Label l(Level::kL3);
  for (uint64_t i = 1; i <= 4000; ++i) {
    l.Set(H(i * 3), Level::kStar);
  }
  l.Set(H(100000), Level::kL0);
  const std::string pickled = codec::PickleLabel(l);
  EXPECT_LT(pickled.size(), l.entry_count() * 2 + 16)
      << "⋆-rich labels must not pay per-entry level bytes";
  Label out;
  ASSERT_EQ(codec::UnpickleLabel(pickled, &out), Status::kOk);
  EXPECT_TRUE(out.Equals(l));
}

TEST(LabelCodecTest, RejectsEveryTruncation) {
  const Label l({{H(3), Level::kStar}, {H(70), Level::kL0}, {H(5000), Level::kL3}}, Level::kL2);
  const std::string pickled = codec::PickleLabel(l);
  for (size_t cut = 0; cut < pickled.size(); ++cut) {
    Label out;
    const Status s = codec::UnpickleLabel(pickled.substr(0, cut), &out);
    EXPECT_NE(s, Status::kOk) << "prefix of length " << cut << " must not decode";
  }
}

TEST(LabelCodecTest, RejectsTrailingBytes) {
  std::string pickled = codec::PickleLabel(Label({{H(3), Level::kStar}}, Level::kL2));
  pickled.push_back('\x00');
  Label out;
  EXPECT_EQ(codec::UnpickleLabel(pickled, &out), Status::kInvalidArgs);
}

TEST(LabelCodecTest, RejectsCorruptStructure) {
  Label out;
  // Bad default level ordinal.
  EXPECT_EQ(codec::UnpickleLabel(std::string("\x07\x00", 2), &out), Status::kInvalidArgs);
  // Run whose level equals the default (non-canonical).
  {
    std::string buf;
    buf.push_back('\x04');                        // default 3
    codec::AppendVarint(1, &buf);                 // one run
    codec::AppendVarint((1 << 3) | 4, &buf);      // len 1, level 3 == default
    codec::AppendVarint(1, &buf);                 // delta
    EXPECT_EQ(codec::UnpickleLabel(buf, &out), Status::kInvalidArgs);
  }
  // Zero-length run.
  {
    std::string buf;
    buf.push_back('\x04');
    codec::AppendVarint(1, &buf);
    codec::AppendVarint((0 << 3) | 0, &buf);  // len 0, level ⋆
    EXPECT_EQ(codec::UnpickleLabel(buf, &out), Status::kInvalidArgs);
  }
  // Zero delta (duplicate handle).
  {
    std::string buf;
    buf.push_back('\x04');
    codec::AppendVarint(1, &buf);
    codec::AppendVarint((2 << 3) | 0, &buf);
    codec::AppendVarint(5, &buf);
    codec::AppendVarint(0, &buf);
    EXPECT_EQ(codec::UnpickleLabel(buf, &out), Status::kInvalidArgs);
  }
  // Handle overflow past 61 bits.
  {
    std::string buf;
    buf.push_back('\x04');
    codec::AppendVarint(1, &buf);
    codec::AppendVarint((2 << 3) | 0, &buf);
    codec::AppendVarint(Handle::kMaxValue, &buf);
    codec::AppendVarint(2, &buf);
    EXPECT_EQ(codec::UnpickleLabel(buf, &out), Status::kInvalidArgs);
  }
  // A second run restarting below the first (zero delta at a run boundary):
  // deltas accumulate across runs, so the stream cannot express unsorted or
  // overlapping runs — the boundary delta of 0 is the only encoding of a
  // repeat, and it must be rejected like any other duplicate.
  {
    std::string buf;
    buf.push_back('\x04');                    // default 3
    codec::AppendVarint(2, &buf);             // two runs
    codec::AppendVarint((1 << 3) | 0, &buf);  // run 1: len 1, level ⋆
    codec::AppendVarint(9, &buf);             // handle 9
    codec::AppendVarint((1 << 3) | 1, &buf);  // run 2: len 1, level 0
    codec::AppendVarint(0, &buf);             // "handle 9 again"
    EXPECT_EQ(codec::UnpickleLabel(buf, &out), Status::kInvalidArgs);
  }
  // A run length exceeding the remaining buffer must fail fast as a
  // truncation (each delta costs at least one byte), not be believed.
  {
    std::string buf;
    buf.push_back('\x04');
    codec::AppendVarint(1, &buf);
    codec::AppendVarint((1000 << 3) | 0, &buf);  // run claims 1000 entries
    codec::AppendVarint(1, &buf);                // ...but only one follows
    EXPECT_EQ(codec::UnpickleLabel(buf, &out), Status::kBufferTooSmall);
  }
}

// Decode failures must never leave a half-built label in *out: services
// unpickling a label into a field they already hold (recovery paths) would
// otherwise see corrupt state after a bad record.
TEST(LabelCodecTest, FailedDecodeLeavesOutputUntouched) {
  const Label sentinel({{H(77), Level::kL1}}, Level::kL2);
  // Valid prefix (two good entries), then a zero delta.
  std::string buf;
  buf.push_back('\x04');
  codec::AppendVarint(1, &buf);
  codec::AppendVarint((3 << 3) | 0, &buf);
  codec::AppendVarint(5, &buf);
  codec::AppendVarint(3, &buf);
  codec::AppendVarint(0, &buf);  // corrupt third entry
  Label out = sentinel;
  EXPECT_EQ(codec::UnpickleLabel(buf, &out), Status::kInvalidArgs);
  EXPECT_TRUE(out.Equals(sentinel));
  out.CheckRep();
}

TEST(LabelCodecTest, FuzzedGarbageNeverPanics) {
  Rng rng(0xC0DEC);
  for (int i = 0; i < 2000; ++i) {
    std::string garbage;
    const size_t len = rng.NextBelow(64);
    for (size_t j = 0; j < len; ++j) {
      garbage.push_back(static_cast<char>(rng.NextBelow(256)));
    }
    Label out;
    (void)codec::UnpickleLabel(garbage, &out);  // must return, never abort
  }
}

// The cross-check the ISSUE asks for: random labels through the binary codec
// AND the text form, both reproducing the original, reps always valid.
TEST(LabelCodecPropertyTest, RandomLabelsRoundTripBothCodecs) {
  Rng rng(0x5EED);
  for (int iter = 0; iter < 500; ++iter) {
    const Level def = kAllLevels[rng.NextBelow(5)];
    Label l(def);
    const size_t entries = rng.NextBelow(200);
    for (size_t e = 0; e < entries; ++e) {
      // Mix dense low handles (delta-friendly) with sparse huge ones.
      const uint64_t h = rng.NextBool() ? rng.NextInRange(1, 500)
                                        : rng.NextInRange(1, Handle::kMaxValue);
      l.Set(H(h), kAllLevels[rng.NextBelow(5)]);
    }
    l.CheckRep();

    Label binary;
    ASSERT_EQ(codec::UnpickleLabel(codec::PickleLabel(l), &binary), Status::kOk);
    binary.CheckRep();
    EXPECT_TRUE(binary.Equals(l)) << l.ToString();

    Label text;
    ASSERT_TRUE(Label::Parse(l.ToString(), &text)) << l.ToString();
    text.CheckRep();
    EXPECT_TRUE(text.Equals(l)) << l.ToString();

    // And the two decoded forms agree with each other bit-for-bit when
    // re-pickled: the codec is canonical.
    EXPECT_EQ(codec::PickleLabel(binary), codec::PickleLabel(text));
  }
}

// Randomized round-trip over the shapes the bulk unpickle path was built
// for — large ⋆-rich labels with scattered non-⋆ runs — checking rep
// invariants after EVERY unpickle. The builder memcpys entries into chunks
// without per-entry rebalancing, so CheckRep (sorted, deduped, extrema and
// histogram caches correct) is the test that its chunks are real labels and
// not just bags of bytes.
TEST(LabelCodecPropertyTest, RandomStarRichLabelsRoundTripWithValidReps) {
  Rng rng(0xB111D);
  for (int iter = 0; iter < 200; ++iter) {
    const Level def = kAllLevels[rng.NextBelow(5)];
    Label l(def);
    // Mostly-⋆ entries over a dense handle range (long runs), sprinkled
    // with other levels (run breaks), sized to cross many chunk boundaries.
    const size_t entries = 1 + rng.NextBelow(2000);
    uint64_t handle = 0;
    for (size_t e = 0; e < entries; ++e) {
      handle += 1 + rng.NextBelow(4);
      const Level level = rng.NextBelow(8) != 0
                              ? Level::kStar
                              : kAllLevels[rng.NextBelow(5)];
      l.Set(H(handle), level);
    }
    Label out;
    ASSERT_EQ(codec::UnpickleLabel(codec::PickleLabel(l), &out), Status::kOk);
    out.CheckRep();
    ASSERT_TRUE(out.Equals(l));
    // Canonical: re-pickling the decoded label reproduces the bytes.
    ASSERT_EQ(codec::PickleLabel(out), codec::PickleLabel(l));
  }
}

}  // namespace
}  // namespace asbestos
