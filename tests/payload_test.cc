// Payload: refcounted immutable message bodies (src/kernel/payload.h) —
// sharing, zero-copy substr, copy-on-write isolation, and the stats that
// the bench fan-out acceptance check keys on.
#include "src/kernel/payload.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "src/kernel/kernel.h"
#include "tests/test_util.h"

namespace asbestos {
namespace {

using testing::RecorderProcess;
using testing::ScriptedProcess;

TEST(PayloadTest, CopyIsRefcountShareNotByteCopy) {
  const PayloadStats before = GetPayloadStats();
  Payload a(std::string(1024, 'a'));
  EXPECT_EQ(GetPayloadStats().buffers_created, before.buffers_created + 1);

  Payload b = a;
  EXPECT_EQ(b.buffer_id(), a.buffer_id()) << "copy aliases the same buffer";
  EXPECT_EQ(a.use_count(), 2);
  const PayloadStats after = GetPayloadStats();
  EXPECT_EQ(after.buffers_created, before.buffers_created + 1) << "no second buffer";
  EXPECT_EQ(after.shared_copies, before.shared_copies + 1);
  EXPECT_EQ(after.bytes_shared_saved, before.bytes_shared_saved + 1024);
}

TEST(PayloadTest, MoveTransfersWithoutSharing) {
  const PayloadStats before = GetPayloadStats();
  Payload a(std::string(512, 'm'));
  const void* id = a.buffer_id();
  Payload b = std::move(a);
  EXPECT_EQ(b.buffer_id(), id);
  EXPECT_EQ(b.use_count(), 1);
  EXPECT_EQ(GetPayloadStats().shared_copies, before.shared_copies)
      << "a move is not a share";
}

TEST(PayloadTest, SubstrIsZeroCopyView) {
  Payload a("hello, payload world");
  Payload slice = a.substr(7, 7);
  EXPECT_EQ(slice, "payload");
  EXPECT_EQ(slice.buffer_id(), a.buffer_id()) << "substr shares the buffer";
  EXPECT_EQ(slice.buffer_bytes(), a.size()) << "the whole buffer stays pinned";
}

TEST(PayloadTest, MutableExclusiveFullViewEditsInPlace) {
  const PayloadStats before = GetPayloadStats();
  Payload a(std::string("edit me"));
  const void* id = a.buffer_id();
  std::string* s = a.Mutable();
  s->append(" in place");
  EXPECT_EQ(a, "edit me in place");
  EXPECT_EQ(a.buffer_id(), id) << "sole owner of a full view: no reallocation";
  EXPECT_EQ(GetPayloadStats().cow_copies, before.cow_copies);
}

TEST(PayloadTest, MutableUnsharesAndNeverTouchesSiblings) {
  const PayloadStats before = GetPayloadStats();
  Payload a(std::string(64, 'x'));
  Payload b = a;

  std::string* s = b.Mutable();
  (*s)[0] = 'Y';
  EXPECT_NE(b.buffer_id(), a.buffer_id()) << "COW gave b its own buffer";
  EXPECT_EQ(a[0], 'x') << "the sibling still sees the original bytes";
  EXPECT_EQ(b[0], 'Y');
  const PayloadStats after = GetPayloadStats();
  EXPECT_EQ(after.cow_copies, before.cow_copies + 1);
  EXPECT_EQ(after.cow_bytes_copied, before.cow_bytes_copied + 64);
}

TEST(PayloadTest, MutableOnSubViewCopiesOnlyTheViewedBytes) {
  const PayloadStats before = GetPayloadStats();
  Payload a(std::string(1000, 'z'));
  Payload slice = a.substr(100, 10);
  std::string* s = slice.Mutable();
  EXPECT_EQ(s->size(), 10u) << "only the view materializes, not the buffer";
  EXPECT_EQ(GetPayloadStats().cow_bytes_copied, before.cow_bytes_copied + 10);
  EXPECT_NE(slice.buffer_id(), a.buffer_id());
}

TEST(PayloadTest, ComparisonAndStringInterop) {
  Payload p("abc");
  EXPECT_EQ(p, "abc");
  EXPECT_EQ(p, std::string("abc"));
  EXPECT_EQ(p, std::string_view("abc"));
  EXPECT_NE(p, "abd");
  EXPECT_EQ(p.find('b'), 1u);
  EXPECT_EQ(p.find("bc"), 1u);
  const std::string materialized = p;  // implicit copy at the consumer boundary
  EXPECT_EQ(materialized, "abc");
  p.clear();
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p, Payload());
}

// The kernel-level COW guarantee: a receiver that edits its delivered copy
// can never alter what the sender kept or what a sibling queue entry holds.
TEST(PayloadTest, ReceiverMutationNeverAltersSenderOrSiblingDelivery) {
  Kernel kernel(0x5eedULL);
  std::vector<RecorderProcess::Received> intact;

  // Receiver 1 mutates its delivery in place; receiver 2 records its copy.
  SpawnArgs margs;
  margs.name = "mutator";
  std::string mutator_saw;
  const ProcessId mut = kernel.CreateProcess(
      std::make_unique<ScriptedProcess>(nullptr,
                                        [&](ProcessContext&, const Message& msg) {
                                          Payload mine = msg.data;  // share, then edit
                                          (*mine.Mutable())[0] = '!';
                                          mutator_saw = mine.str();
                                        }),
      margs);
  SpawnArgs rargs;
  rargs.name = "recorder";
  const ProcessId rec = kernel.CreateProcess(std::make_unique<RecorderProcess>(&intact), rargs);

  Handle mport, rport;
  kernel.WithProcessContext(mut, [&](ProcessContext& ctx) {
    mport = ctx.NewPort(Label::Top());
    ASSERT_EQ(ctx.SetPortLabel(mport, Label::Top()), Status::kOk);
  });
  kernel.WithProcessContext(rec, [&](ProcessContext& ctx) {
    rport = ctx.NewPort(Label::Top());
    ASSERT_EQ(ctx.SetPortLabel(rport, Label::Top()), Status::kOk);
  });

  SpawnArgs sargs;
  sargs.name = "sender";
  const ProcessId tx = kernel.CreateProcess(std::make_unique<ScriptedProcess>(), sargs);
  Payload body("shared body bytes");
  kernel.WithProcessContext(tx, [&](ProcessContext& ctx) {
    Message m1;
    m1.data = body;  // share
    ASSERT_EQ(ctx.Send(mport, std::move(m1)), Status::kOk);
    Message m2;
    m2.data = body;  // share again: three holders of one buffer
    ASSERT_EQ(ctx.Send(rport, std::move(m2)), Status::kOk);
  });
  kernel.RunUntilIdle();

  EXPECT_EQ(mutator_saw, "!hared body bytes");
  ASSERT_EQ(intact.size(), 1u);
  EXPECT_EQ(intact[0].msg.data, "shared body bytes")
      << "sibling delivery is isolated from the mutator's COW edit";
  EXPECT_EQ(body, "shared body bytes") << "the sender's copy is untouched";
}

}  // namespace
}  // namespace asbestos
