// The mail-reader / untrusted-attachment scenario of paper §5.5.
//
// A mail reader must talk to an attachment viewer it just launched, but must
// not accept contamination from it: "A compromised attachment that develops
// a high taint should lose the ability to send to the mail reader." The
// mechanism is the port receive label — a receiver-imposed, discretionary
// filter the kernel enforces before delivery.
#include <cstdio>
#include <memory>

#include "src/kernel/kernel.h"

namespace {

using namespace asbestos;  // NOLINT: example brevity

class Actor : public ProcessCode {
 public:
  explicit Actor(const char* who) : who_(who) {}
  void HandleMessage(ProcessContext& ctx, const Message& msg) override {
    (void)ctx;
    std::printf("  [%s] got: \"%s\"\n", who_, msg.data.str().c_str());
  }

 private:
  const char* who_;
};

}  // namespace

int main() {
  std::printf("== Mail reader vs. untrusted attachment (paper §5.5) ==\n\n");
  Kernel kernel(7);

  SpawnArgs reader_args;
  reader_args.name = "mail-reader";
  const ProcessId reader =
      kernel.CreateProcess(std::make_unique<Actor>("mail-reader"), reader_args);

  // The filesystem is a trusted peer whose messages the reader accepts.
  SpawnArgs fs_args;
  fs_args.name = "filesystem";
  const ProcessId fs = kernel.CreateProcess(std::make_unique<Actor>("filesystem"), fs_args);
  (void)fs;

  // The reader's inbox port: its *port label* is {2}, which refuses any
  // message whose effective send label exceeds level 2 anywhere — i.e. any
  // highly tainted sender — regardless of the reader's own receive label.
  Handle inbox;
  kernel.WithProcessContext(reader, [&](ProcessContext& ctx) {
    inbox = ctx.NewPort(Label::Top());
    ctx.SetPortLabel(inbox, Label(Level::kL2));
  });

  // Launch the attachment viewer.
  SpawnArgs att_args;
  att_args.name = "attachment";
  const ProcessId attachment =
      kernel.CreateProcess(std::make_unique<Actor>("attachment"), att_args);

  std::printf("1. the attachment reports progress — it is untainted, so this works:\n");
  kernel.WithProcessContext(attachment, [&](ProcessContext& ctx) {
    Message m;
    m.data = "rendering page 1 of 2";
    ctx.Send(inbox, std::move(m));
  });
  kernel.RunUntilIdle();

  std::printf("\n2. the filesystem also talks to the reader, as it should:\n");
  kernel.WithProcessContext(fs, [&](ProcessContext& ctx) {
    Message m;
    m.data = "mailbox synced";
    ctx.Send(inbox, std::move(m));
  });
  kernel.RunUntilIdle();

  std::printf("\n3. the attachment is compromised and develops a high taint...\n");
  kernel.WithProcessContext(attachment, [&](ProcessContext& ctx) {
    const Handle stolen = ctx.NewHandle();
    // Self-taint at 3 models having read data from some sensitive
    // compartment (e.g. the user's address book).
    ctx.SetSendLevel(stolen, Level::kL3);
    std::printf("   attachment's send label: %s\n", ctx.send_label().ToString().c_str());
    Message m;
    m.data = "totally innocent progress update (with exfiltrated bytes)";
    const Status st = ctx.Send(inbox, std::move(m));
    std::printf("   send returned %s — the attacker cannot even tell it failed\n",
                StatusString(st));
  });
  kernel.RunUntilIdle();
  std::printf("   nothing was delivered: the inbox port label {2} bounced the "
              "tainted sender\n   (label-check drops: %llu)\n",
              (unsigned long long)kernel.stats().drops_label_check);

  std::printf("\n4. the port label is discretionary: the reader can re-open its inbox\n"
              "   at any time (set_port_label requires no privilege)...\n");
  kernel.WithProcessContext(reader, [&](ProcessContext& ctx) {
    ctx.SetPortLabel(inbox, Label::Top());
    // But its own receive label {2} still protects it from level-3 taints:
    // port labels filter per-port, receive labels per-process.
  });
  kernel.WithProcessContext(attachment, [&](ProcessContext& ctx) {
    Message m;
    m.data = "try again";
    ctx.Send(inbox, std::move(m));
  });
  kernel.RunUntilIdle();
  std::printf("   still dropped (%llu total): the process receive label is the "
              "second line of defence.\n",
              (unsigned long long)kernel.stats().drops_label_check);
  return 0;
}
