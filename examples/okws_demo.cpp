// The full OKWS web server on Asbestos (paper §7), driven over the simulated
// wire: boot the process suite, log in users, exercise session state,
// database-backed notes, decentralized declassification via a profile
// service, and show that users are isolated even though they share worker
// processes and one database.
#include <cstdio>
#include <cstring>
#include <memory>

#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/provenance.h"
#include "src/obs/trace.h"
#include "src/okws/okws_world.h"
#include "src/okws/services.h"

namespace {

using namespace asbestos;  // NOLINT: example brevity

HttpLoadClient::Result Fetch(OkwsWorld& world, const std::string& target,
                             const std::string& user, const std::string& pass) {
  HttpLoadClient client(&world.net(), 80, 4);
  client.Enqueue(OkwsWorld::MakeRequest(target, user, pass), 0);
  world.RunClient(&client);
  if (client.results().empty()) {
    return {};
  }
  return client.results()[0];
}

void Show(const char* what, const HttpLoadClient::Result& r) {
  std::printf("  %-46s -> %d %s\n", what, r.status,
              r.body.size() > 48 ? (r.body.substr(0, 45) + "...").c_str() : r.body.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool trace = false;
  bool dump_metrics = false;
  bool provenance = false;
  bool profile = false;
  const char* metrics_file = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) {
      trace = true;
    } else if (std::strcmp(argv[i], "--dump-metrics") == 0) {
      dump_metrics = true;
    } else if (std::strcmp(argv[i], "--provenance") == 0) {
      provenance = true;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      profile = true;
    } else if (std::strcmp(argv[i], "--metrics-file") == 0 && i + 1 < argc) {
      metrics_file = argv[++i];  // snapshot written here at exit (CI smoke)
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trace] [--dump-metrics] [--provenance] "
                   "[--profile] [--metrics-file PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (trace) {
    asbestos::obs::TraceRing::SetEnabled(true);
  }
  if (provenance) {
    asbestos::obs::ProvenanceLedger::SetEnabled(true);
  }
  if (profile) {
    asbestos::obs::CycleProfiler::SetEnabled(true);
  }

  std::printf("== OKWS on Asbestos: end-to-end demo ==\n\n");

  OkwsWorldConfig config;
  config.users = {{"alice", "wonderland"}, {"bob", "builder"}};
  config.services.push_back({"echo", [] { return std::make_unique<EchoService>(); }, false, {}});
  config.services.push_back(
      {"store", [] { return std::make_unique<StorageService>(); }, false, {}});
  config.services.push_back(
      {"notes", [] { return std::make_unique<NotesService>(); }, false, {}});
  config.services.push_back(
      {"profile", [] { return std::make_unique<ProfileService>(); }, true, {}});
  config.services.push_back(
      {"passwd", [] { return std::make_unique<PasswdService>(); }, false, {}});
  config.extra_tables = {NotesService::kTableSql, ProfileService::kTableSql};

  OkwsWorld world(std::move(config));
  world.PumpUntilReady();
  std::printf("booted: launcher, netd, ok-demux, idd, ok-dbproxy, 5 workers\n\n");

  std::printf("basic requests and authentication:\n");
  Show("GET /echo (alice)", Fetch(world, "/echo?n=20", "alice", "wonderland"));
  Show("GET /echo (bad password)", Fetch(world, "/echo", "alice", "queen-of-hearts"));
  Show("GET /nosuch (alice)", Fetch(world, "/nosuch", "alice", "wonderland"));

  std::printf("\nsession state lives in per-user event processes (§7.3):\n");
  Show("GET /store?d=teacup (alice)", Fetch(world, "/store?d=teacup", "alice", "wonderland"));
  Show("GET /store (alice, next connection)", Fetch(world, "/store", "alice", "wonderland"));
  Show("GET /store (bob sees his own state)", Fetch(world, "/store", "bob", "builder"));

  std::printf("\ndatabase rows are tainted per user (§7.5):\n");
  Show("alice adds a note", Fetch(world, "/notes?op=add&text=buy+tarts", "alice", "wonderland"));
  Show("bob adds a note", Fetch(world, "/notes?op=add&text=fix+roof", "bob", "builder"));
  Show("alice lists notes", Fetch(world, "/notes?op=list", "alice", "wonderland"));
  Show("bob lists notes (no tarts!)", Fetch(world, "/notes?op=list", "bob", "builder"));

  std::printf("\ndecentralized declassification via the profile worker (§7.6):\n");
  Show("alice publishes her profile",
       Fetch(world, "/profile?op=set&text=Curiouser+and+curiouser", "alice", "wonderland"));
  Show("bob reads alice's public profile",
       Fetch(world, "/profile?op=get&who=alice", "bob", "builder"));

  std::printf("\npassword changes go through idd with a speaks-for proof (§5.4):\n");
  Show("alice changes her password",
       Fetch(world, "/passwd?old=wonderland&new=looking-glass", "alice", "wonderland"));
  Show("old password now fails", Fetch(world, "/echo", "alice", "wonderland"));
  Show("new password works", Fetch(world, "/echo", "alice", "looking-glass"));

  const KernelStats& stats = world.kernel().stats();
  std::printf("\nkernel totals: %llu deliveries, %llu label-check drops, "
              "%llu event processes created\n",
              (unsigned long long)stats.deliveries,
              (unsigned long long)stats.drops_label_check,
              (unsigned long long)stats.eps_created);
  std::printf("every cross-user denial above was kernel label enforcement, not "
              "application politeness.\n");

  if (trace) {
    // Run one more request against a cleared ring so its span chain prints
    // alone: netd.accept -> demux.dispatch -> worker.request ->
    // dbproxy.stmt -> worker.respond -> netd.reply.
    obs::TraceRing::Get().Clear();
    std::printf("\nspan timeline for one traced request (--trace):\n");
    Show("GET /notes?op=list (alice)",
         Fetch(world, "/notes?op=list", "alice", "looking-glass"));
    obs::TraceReader reader(Label::Top());
    for (const obs::SpanEvent& ev : reader.Visible()) {
      std::printf("  trace=%llu @%-8llu %-8s %-16s %-32s label=%s\n",
                  (unsigned long long)ev.trace_id, (unsigned long long)ev.at_cycles,
                  ev.component.c_str(), ev.name.c_str(), ev.detail.c_str(),
                  ev.label.ToString().c_str());
    }
  }

  if (provenance) {
    // Answer "why is this process tainted?" for the newest contamination the
    // ledger saw: walk its taint back hop by hop to the origin, then list
    // every refusal the run produced — both through a full-clearance reader
    // (a low-clearance reader would see, and count, nothing high).
    std::printf("\ntaint provenance (--provenance):\n");
    const obs::ProvenanceLedger& ledger = obs::ProvenanceLedger::Get();
    obs::ProvenanceReader reader(Label::Top());
    const obs::TaintEdge* newest = nullptr;
    for (const obs::TaintEdge& e : ledger.edges()) {
      if (e.kind == obs::EdgeKind::kContaminate) {
        newest = &e;
      }
    }
    if (newest != nullptr) {
      uint64_t handle = 0;
      for (const auto& [h, level] : newest->cause.Entries()) {
        if (LevelLeq(Level::kL2, level)) {
          handle = h.value();
          break;
        }
      }
      std::printf("  WhyTainted(%s, handle %llu):\n", newest->subject.c_str(),
                  (unsigned long long)handle);
      for (const obs::TaintHop& hop : reader.WhyTainted(newest->subject, handle)) {
        std::printf("    #%-4llu @%-8llu %s\n", (unsigned long long)hop.edge.id,
                    (unsigned long long)hop.edge.at_cycles, hop.via.c_str());
      }
    }
    std::printf("  refusals (%llu total, %zu retained):\n",
                (unsigned long long)ledger.total_refusals(),
                reader.VisibleRefusals().size());
    for (const obs::RefusalRecord& r : reader.VisibleRefusals()) {
      std::printf("    #%-4llu %-24s %-10s %s\n", (unsigned long long)r.id,
                  r.site.c_str(), r.subject.c_str(), r.detail.c_str());
    }
  }

  if (profile) {
    std::printf("\ncollapsed-stack flamegraph (--profile):\n%s",
                obs::CycleProfiler::Get().CollapsedStacks().c_str());
  }

  if (dump_metrics) {
    std::printf("\nmetrics snapshot (--dump-metrics):\n%s\n",
                obs::Registry::Get().SnapshotJson().c_str());
  }
  if (metrics_file != nullptr &&
      !obs::Registry::Get().WriteSnapshotFile(metrics_file)) {
    std::fprintf(stderr, "failed to write %s\n", metrics_file);
    return 1;
  }
  return 0;
}
