// Quickstart: Asbestos labels in five minutes.
//
// Creates a tiny world — a data owner, a reader, and an outsider — and walks
// through the core label mechanisms of the paper: compartment creation,
// contamination, the ⋆ declassification privilege, receive-label clearance,
// and unreliable sends silently dropping disallowed messages.
//
//   cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart
#include <cstdio>
#include <memory>
#include <vector>

#include "src/kernel/kernel.h"

namespace {

using namespace asbestos;  // NOLINT: example brevity

// A process that prints everything it receives.
class Printer : public ProcessCode {
 public:
  explicit Printer(const char* who) : who_(who) {}
  void HandleMessage(ProcessContext& ctx, const Message& msg) override {
    std::printf("  [%s] received: \"%s\"  (my send label is now %s)\n", who_,
                msg.data.str().c_str(), ctx.send_label().ToString().c_str());
  }

 private:
  const char* who_;
};

}  // namespace

int main() {
  std::printf("== Asbestos labels quickstart ==\n\n");
  Kernel kernel(/*boot_key=*/2005);

  // --- Three processes -------------------------------------------------------
  SpawnArgs owner_args;
  owner_args.name = "owner";
  const ProcessId owner = kernel.CreateProcess(std::make_unique<Printer>("owner"), owner_args);
  SpawnArgs reader_args;
  reader_args.name = "reader";
  const ProcessId reader =
      kernel.CreateProcess(std::make_unique<Printer>("reader"), reader_args);
  SpawnArgs outsider_args;
  outsider_args.name = "outsider";
  const ProcessId outsider =
      kernel.CreateProcess(std::make_unique<Printer>("outsider"), outsider_args);

  // Everyone opens a mailbox port.
  Handle reader_port;
  Handle outsider_port;
  kernel.WithProcessContext(reader, [&](ProcessContext& ctx) {
    reader_port = ctx.NewPort(Label::Top());
    ctx.SetPortLabel(reader_port, Label::Top());  // open to all
  });
  kernel.WithProcessContext(outsider, [&](ProcessContext& ctx) {
    outsider_port = ctx.NewPort(Label::Top());
    ctx.SetPortLabel(outsider_port, Label::Top());
  });

  // --- 1. The owner mints a compartment --------------------------------------
  Handle secret;
  kernel.WithProcessContext(owner, [&](ProcessContext& ctx) {
    secret = ctx.NewHandle();
    std::printf("1. owner created compartment %llu and holds it at ⋆: %s\n",
                (unsigned long long)secret.value(), ctx.send_label().ToString().c_str());
  });

  // --- 2. Clearing the reader -------------------------------------------------
  // Raising someone's receive label is decontamination: it needs ⋆, which the
  // owner has. The grant rides on a message (D_R).
  kernel.WithProcessContext(owner, [&](ProcessContext& ctx) {
    Message m;
    m.data = "you are cleared for the secret compartment";
    SendArgs args;
    args.decont_receive = Label({{secret, Level::kL3}}, Level::kStar);
    ctx.Send(reader_port, std::move(m), args);
  });
  kernel.RunUntilIdle();
  std::printf("2. reader's receive label: %s\n",
              kernel.RecvLabelOf(reader).ToString().c_str());

  // --- 3. Sending tainted data -----------------------------------------------
  // The contamination label C_S taints the message; receivers get tainted.
  std::printf("3. owner sends the secret to both mailboxes, tainted at level 3...\n");
  kernel.WithProcessContext(owner, [&](ProcessContext& ctx) {
    SendArgs args;
    args.contaminate = Label({{secret, Level::kL3}}, Level::kStar);
    Message to_reader;
    to_reader.data = "the launch code is 0451";
    ctx.Send(reader_port, std::move(to_reader), args);
    Message to_outsider;
    to_outsider.data = "the launch code is 0451";
    ctx.Send(outsider_port, std::move(to_outsider), args);
  });
  kernel.RunUntilIdle();
  std::printf("   ...the outsider's copy was silently dropped (drops so far: %llu)\n",
              (unsigned long long)kernel.stats().drops_label_check);
  std::printf("   reader's send label is now tainted: %s\n",
              kernel.SendLabelOf(reader).ToString().c_str());

  // --- 4. Taint is transitive --------------------------------------------------
  std::printf("4. the tainted reader tries to forward the secret to the outsider...\n");
  kernel.WithProcessContext(reader, [&](ProcessContext& ctx) {
    Message leak;
    leak.data = "psst: 0451";
    ctx.Send(outsider_port, std::move(leak));  // reports success regardless
  });
  kernel.RunUntilIdle();
  std::printf("   ...also dropped (drops: %llu). Send still returned OK — messaging is\n",
              (unsigned long long)kernel.stats().drops_label_check);
  std::printf("   deliberately unreliable so delivery cannot be used as a covert channel.\n");

  // --- 5. Declassification ------------------------------------------------------
  std::printf("5. the owner (⋆) is immune to its own taint and may declassify:\n");
  kernel.WithProcessContext(owner, [&](ProcessContext& ctx) {
    std::printf("   owner's send label after all of this: %s\n",
                ctx.send_label().ToString().c_str());
    Message pub;
    pub.data = "declassified: the launch code was a test pattern";
    ctx.Send(outsider_port, std::move(pub));  // no contamination: plain send
  });
  kernel.RunUntilIdle();

  std::printf("\nDone. Deliveries: %llu, label-check drops: %llu.\n",
              (unsigned long long)kernel.stats().deliveries,
              (unsigned long long)kernel.stats().drops_label_check);
  return 0;
}
