// The multi-user file server of paper §5.2, end to end.
//
// Users u and v store private files on a shared, trusted file server. The
// compartments are decentralized: each user mints their own taint and grant
// handles and teaches the server about them on CREATE. User u's terminal can
// read u's files; v's data can never reach it.
#include <cstdio>
#include <memory>
#include <vector>

#include "src/fs/file_server.h"
#include "src/kernel/kernel.h"

namespace {

using namespace asbestos;  // NOLINT: example brevity

class Shell : public ProcessCode {
 public:
  explicit Shell(const char* who) : who_(who) {}
  void HandleMessage(ProcessContext& ctx, const Message& msg) override {
    (void)ctx;
    if (msg.type == fs_proto::kReadR) {
      std::printf("  [%s] read reply (status %lld): \"%s\"\n", who_,
                  -static_cast<long long>(msg.words[1]), msg.data.str().c_str());
    } else {
      std::printf("  [%s] reply type %llu status %lld\n", who_,
                  (unsigned long long)msg.type, -static_cast<long long>(msg.words[1]));
    }
  }

 private:
  const char* who_;
};

struct User {
  ProcessId shell;
  Handle port;
  Handle taint;   // uT: secrecy compartment
  Handle grant;   // uG: speaks-for handle
};

}  // namespace

int main() {
  std::printf("== Labeled file server (paper §5.2) ==\n\n");
  Kernel kernel(42);

  auto fs_code = std::make_unique<FileServerProcess>();
  FileServerProcess* fs = fs_code.get();
  SpawnArgs fs_args;
  fs_args.name = "fileserver";
  kernel.CreateProcess(std::move(fs_code), fs_args);
  const Handle fs_port = fs->service_port();

  // Two users with their own compartments.
  auto make_user = [&](const char* name) {
    User u;
    SpawnArgs args;
    args.name = name;
    u.shell = kernel.CreateProcess(std::make_unique<Shell>(name), args);
    kernel.WithProcessContext(u.shell, [&](ProcessContext& ctx) {
      u.port = ctx.NewPort(Label::Top());
      ctx.SetPortLabel(u.port, Label::Top());
      u.taint = ctx.NewHandle();
      u.grant = ctx.NewHandle();
      // Accept your own compartment's taint (you hold ⋆, so this is free).
      ctx.SetReceiveLevel(u.taint, Level::kL3);
    });
    return u;
  };
  User u = make_user("shell-u");
  User v = make_user("shell-v");

  // Each user creates a private file, granting the server declassification
  // privilege and clearance for their compartment (the decentralized §5.3
  // pattern: no administrator involved).
  auto create_file = [&](User& usr, const char* path) {
    kernel.WithProcessContext(usr.shell, [&](ProcessContext& ctx) {
      Message m;
      m.type = fs_proto::kCreate;
      m.data = path;
      m.words = {1, usr.taint.value(), LevelOrdinal(Level::kL3), usr.grant.value(),
                 LevelOrdinal(Level::kL0)};
      m.reply_port = usr.port;
      SendArgs args;
      args.decont_send = Label({{usr.taint, Level::kStar}}, Level::kL3);
      args.decont_receive = Label({{usr.taint, Level::kL3}}, Level::kStar);
      ctx.Send(fs_port, std::move(m), args);
    });
  };
  std::printf("1. creating /home/u/diary and /home/v/diary...\n");
  create_file(u, "/home/u/diary");
  create_file(v, "/home/v/diary");
  kernel.RunUntilIdle();

  auto write_file = [&](User& usr, const char* path, const char* contents) {
    kernel.WithProcessContext(usr.shell, [&](ProcessContext& ctx) {
      Message m;
      m.type = fs_proto::kWrite;
      m.data = std::string(path) + "\n" + contents;
      m.words = {2};
      m.reply_port = usr.port;
      SendArgs args;
      args.verify = Label({{usr.grant, Level::kL0}}, Level::kL3);  // prove speaks-for
      ctx.Send(fs_port, std::move(m), args);
    });
  };
  std::printf("2. each user writes their diary (verify label proves uG at 0)...\n");
  write_file(u, "/home/u/diary", "dear diary, u was here");
  write_file(v, "/home/v/diary", "v's innermost secrets");
  kernel.RunUntilIdle();

  // u's terminal: cleared for u's compartment, like UT in paper Figure 2.
  SpawnArgs term_args;
  term_args.name = "terminal-u";
  term_args.recv_label = Label({{u.taint, Level::kL3}}, Level::kL2);
  const ProcessId terminal =
      kernel.CreateProcess(std::make_unique<Shell>("terminal-u"), term_args);
  Handle term_port;
  kernel.WithProcessContext(terminal, [&](ProcessContext& ctx) {
    term_port = ctx.NewPort(Label::Top());
    ctx.SetPortLabel(term_port, Label::Top());
  });

  std::printf("3. u asks the server to send /home/u/diary to u's terminal...\n");
  kernel.WithProcessContext(u.shell, [&](ProcessContext& ctx) {
    Message m;
    m.type = fs_proto::kRead;
    m.data = "/home/u/diary";
    m.words = {3};
    m.reply_port = term_port;
    ctx.Send(fs_port, std::move(m));
  });
  kernel.RunUntilIdle();

  std::printf("4. v (maliciously) asks the server to send v's diary to u's terminal...\n");
  kernel.WithProcessContext(v.shell, [&](ProcessContext& ctx) {
    Message m;
    m.type = fs_proto::kRead;
    m.data = "/home/v/diary";
    m.words = {4};
    m.reply_port = term_port;
    ctx.Send(fs_port, std::move(m));
  });
  kernel.RunUntilIdle();
  std::printf("   ...nothing printed: the reply carried vT 3 and u's terminal\n"
              "   only accepts uT. Label-check drops so far: %llu\n",
              (unsigned long long)kernel.stats().drops_label_check);

  std::printf("\n5. mallory (no speaks-for grant) tries to overwrite u's diary...\n");
  SpawnArgs mal_args;
  mal_args.name = "mallory";
  const ProcessId mallory =
      kernel.CreateProcess(std::make_unique<Shell>("mallory"), mal_args);
  Handle mal_port;
  kernel.WithProcessContext(mallory, [&](ProcessContext& ctx) {
    mal_port = ctx.NewPort(Label::Top());
    ctx.SetPortLabel(mal_port, Label::Top());
    Message m;
    m.type = fs_proto::kWrite;
    m.data = "/home/u/diary\nhacked!";
    m.words = {5};
    m.reply_port = mal_port;
    ctx.Send(fs_port, std::move(m));
  });
  kernel.RunUntilIdle();

  std::printf("\nFiles on the server: %zu. The -4 status above is ACCESS_DENIED.\n",
              fs->file_count());
  return 0;
}
