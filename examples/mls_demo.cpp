// Multi-level security on Asbestos labels (paper §5.2, "The four levels").
//
// Traditional military MAC — unclassified / secret / top-secret — emulated
// with two decentralized compartments, exactly as the paper prescribes:
//
//   receive labels encode clearance:    {2}, {s3,2}, {s3,t3,2}
//   send labels encode data seen:       {1}, {s3,1}, {s3,t3,1}
//
// The demo shows no-read-up and no-write-down enforced transitively by the
// kernel, plus the "odd label" {t3,1} the paper discusses.
#include <cstdio>
#include <memory>

#include "src/kernel/kernel.h"

namespace {

using namespace asbestos;  // NOLINT: example brevity

class Analyst : public ProcessCode {
 public:
  explicit Analyst(const char* who) : who_(who) {}
  void HandleMessage(ProcessContext& ctx, const Message& msg) override {
    (void)ctx;
    std::printf("  [%s] received: \"%s\"\n", who_, msg.data.str().c_str());
  }

 private:
  const char* who_;
};

}  // namespace

int main() {
  std::printf("== MLS emulation on Asbestos labels ==\n\n");
  Kernel kernel(1976);  // Bell-LaPadula's year

  // The security administrator mints the hierarchy's compartments.
  SpawnArgs admin_args;
  admin_args.name = "admin";
  const ProcessId admin = kernel.CreateProcess(
      std::make_unique<Analyst>("admin"), admin_args);
  Handle s;  // secret
  Handle t;  // top-secret
  kernel.WithProcessContext(admin, [&](ProcessContext& ctx) {
    s = ctx.NewHandle();
    t = ctx.NewHandle();
  });
  std::printf("compartments: s=%llu (secret), t=%llu (top-secret)\n\n",
              (unsigned long long)s.value(), (unsigned long long)t.value());

  struct Clearance {
    const char* name;
    Label send;
    Label recv;
  };
  const Clearance levels[3] = {
      {"unclassified", Label(Level::kL1), Label(Level::kL2)},
      {"secret", Label({{s, Level::kL3}}, Level::kL1),
       Label({{s, Level::kL3}}, Level::kL2)},
      {"top-secret", Label({{s, Level::kL3}, {t, Level::kL3}}, Level::kL1),
       Label({{s, Level::kL3}, {t, Level::kL3}}, Level::kL2)},
  };

  ProcessId analysts[3];
  Handle ports[3];
  for (int i = 0; i < 3; ++i) {
    SpawnArgs args;
    args.name = levels[i].name;
    args.send_label = levels[i].send;
    args.recv_label = levels[i].recv;
    analysts[i] = kernel.CreateProcess(std::make_unique<Analyst>(levels[i].name), args);
    kernel.WithProcessContext(analysts[i], [&](ProcessContext& ctx) {
      ports[i] = ctx.NewPort(Label::Top());
      ctx.SetPortLabel(ports[i], Label::Top());
    });
  }

  std::printf("information-flow matrix (sender row -> receiver column):\n");
  std::printf("%14s %14s %14s %14s\n", "", "unclassified", "secret", "top-secret");
  for (int from = 0; from < 3; ++from) {
    std::printf("%14s", levels[from].name);
    for (int to = 0; to < 3; ++to) {
      const bool allowed = levels[from].send.Leq(levels[to].recv);
      std::printf(" %14s", allowed ? "flows" : "BLOCKED");
    }
    std::printf("\n");
  }

  std::printf("\nlive demonstration — every analyst briefs every other:\n");
  for (int from = 0; from < 3; ++from) {
    for (int to = 0; to < 3; ++to) {
      if (from == to) {
        continue;
      }
      kernel.WithProcessContext(analysts[from], [&](ProcessContext& ctx) {
        Message m;
        m.data = std::string(levels[from].name) + " briefing";
        ctx.Send(ports[to], std::move(m));
      });
    }
  }
  kernel.RunUntilIdle();
  std::printf("(blocked briefings were dropped silently: %llu label-check drops)\n",
              (unsigned long long)kernel.stats().drops_label_check);

  // The "odd label" of §5.2: {t 3, 1} — top-secret taint without the secret
  // one. No classical level matches it, but flow control still works: it may
  // only reach top-secret clearance.
  std::printf("\nodd label {t 3, 1}: ");
  const Label odd({{t, Level::kL3}}, Level::kL1);
  std::printf("to secret: %s; to top-secret: %s\n",
              odd.Leq(levels[1].recv) ? "flows" : "BLOCKED",
              odd.Leq(levels[2].recv) ? "flows" : "BLOCKED");

  // Dynamic reclassification: the unclassified analyst reads a secret
  // document (the admin clears them first), and is then locked out of
  // writing down.
  std::printf("\ndynamic taint: admin clears 'unclassified' for s, secret analyst "
              "sends them a document...\n");
  kernel.WithProcessContext(admin, [&](ProcessContext& ctx) {
    Message clear;
    clear.data = "you are cleared for secret";
    SendArgs args;
    args.decont_receive = Label({{s, Level::kL3}}, Level::kStar);
    ctx.Send(ports[0], std::move(clear), args);
  });
  kernel.RunUntilIdle();
  kernel.WithProcessContext(analysts[1], [&](ProcessContext& ctx) {
    Message doc;
    doc.data = "secret dossier";
    ctx.Send(ports[0], std::move(doc));
  });
  kernel.RunUntilIdle();
  std::printf("their send label is now %s — any briefing they write is secret.\n",
              kernel.SendLabelOf(analysts[0]).ToString().c_str());
  return 0;
}
